// Tests for the lane QoS subsystem (src/stream/qos.*): the sojourn clock
// produces exact end-to-end round latencies, the CoDel control law pauses
// on sustained latency with the square-root interval shrink, the fq
// (FQ-CoDel DRR) policy grants distinct backlogged lanes and degenerates
// to round_robin-equivalent fairness at equal quantum, codel/fq outcomes
// and all four CSVs are thread-count invariant, overflow+dedicated stays
// byte-identical to the PR 4 goldens, and in a bursty K < N scenario
// admission=codel achieves p99 sojourn <= admission=pause with a
// surviving-lane fraction no worse.
#include "stream/qos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "stream/admission.hpp"
#include "stream/scheduler.hpp"
#include "stream/service.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string csv_of(const StreamOutcome& outcome, const char* name,
                   bool (StreamTelemetry::*writer)(const std::string&) const) {
  const std::string path = temp_path(name);
  EXPECT_TRUE((outcome.telemetry.*writer)(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

TEST(LatencyTracker, SamplesAreExactEndToEndRoundLatencies) {
  LatencyTracker tracker;
  EXPECT_EQ(tracker.head_age(5), 0);
  tracker.on_push(0, /*real=*/true);
  tracker.on_push(1, /*real=*/true);
  EXPECT_EQ(tracker.in_flight(), 2);
  EXPECT_EQ(tracker.head_age(2), 2);  // pushed at 0, two rounds old

  tracker.on_pops(1, 2);  // head decoded during round 2: sojourn 3
  ASSERT_EQ(tracker.samples().size(), 1u);
  EXPECT_EQ(tracker.samples()[0], 3u);
  EXPECT_EQ(tracker.head_age(3), 2);  // new head pushed at 1

  tracker.on_push(2, /*real=*/false);  // clean drain layer: no sample
  tracker.on_pops(2, 4);
  ASSERT_EQ(tracker.samples().size(), 2u);
  EXPECT_EQ(tracker.samples()[1], 4u);  // pushed 1, popped 4
  EXPECT_EQ(tracker.in_flight(), 0);
  EXPECT_EQ(tracker.percentile(50), 3u);
  EXPECT_EQ(tracker.percentile(99), 4u);

  // A layer decoded within its arrival round has sojourn 1 (never 0).
  tracker.on_push(7, /*real=*/true);
  tracker.on_pops(1, 7);
  EXPECT_EQ(tracker.samples().back(), 1u);

  // Reporting more pops than in-flight layers is an accounting bug.
  EXPECT_THROW(tracker.on_pops(1, 8), std::logic_error);
}

TEST(CodelControl, PausesAfterASustainedIntervalAboveTarget) {
  CodelControl codel(/*target=*/3, /*interval=*/10);

  // Below target, or not a standing queue: never pauses, never arms.
  for (std::int64_t now = 0; now < 20; ++now) {
    EXPECT_FALSE(codel.should_pause(now, 2, 5));
    EXPECT_FALSE(codel.should_pause(now, 10, 1));  // one resident layer
  }
  EXPECT_EQ(codel.consecutive_pauses(), 0);

  // Sustained sojourn >= target: arms at the first above round, pauses
  // once a full interval of consecutive above rounds elapsed.
  for (std::int64_t now = 0; now < 9; ++now) {
    EXPECT_FALSE(codel.should_pause(now, 5, 4)) << "round " << now;
  }
  EXPECT_TRUE(codel.should_pause(9, 5, 4));
  EXPECT_EQ(codel.consecutive_pauses(), 1);

  // A dip below target disarms: the count starts over.
  EXPECT_FALSE(codel.should_pause(10, 5, 4));
  EXPECT_FALSE(codel.should_pause(11, 1, 4));  // healthy round, disarm
  EXPECT_FALSE(codel.should_pause(12, 5, 4));  // re-arm
  EXPECT_FALSE(codel.should_pause(20, 5, 4));
  EXPECT_TRUE(codel.should_pause(21, 5, 4));  // 12..21 = 10 rounds above
}

TEST(CodelControl, ConsecutivePausesShrinkTheIntervalBySqrt) {
  CodelControl codel(/*target=*/3, /*interval=*/10);
  for (std::int64_t now = 0; now < 9; ++now) {
    ASSERT_FALSE(codel.should_pause(now, 5, 4));
  }
  ASSERT_TRUE(codel.should_pause(9, 5, 4));
  ASSERT_EQ(codel.consecutive_pauses(), 1);
  // The second consecutive pause waits interval / sqrt(2) ~ 7 rounds.
  EXPECT_EQ(codel.next_deadline_rounds(), 7);

  // Re-admitted at 15, immediately congested again: the shrunken deadline
  // applies because the re-arm falls within `interval` of the resume.
  codel.on_resume(15);
  for (std::int64_t now = 16; now < 22; ++now) {
    EXPECT_FALSE(codel.should_pause(now, 5, 4)) << "round " << now;
  }
  EXPECT_TRUE(codel.should_pause(22, 5, 4));  // 16..22 = 7 rounds above
  EXPECT_EQ(codel.consecutive_pauses(), 2);
  EXPECT_EQ(codel.next_deadline_rounds(), 6);  // 10 / sqrt(3)

  // A long healthy stretch after a resume resets the consecutive count:
  // the next congestion event gets the full interval again.
  codel.on_resume(30);
  EXPECT_FALSE(codel.should_pause(35, 1, 4));
  for (std::int64_t now = 60; now < 69; ++now) {
    EXPECT_FALSE(codel.should_pause(now, 5, 4)) << "round " << now;
  }
  EXPECT_TRUE(codel.should_pause(69, 5, 4));
  EXPECT_EQ(codel.consecutive_pauses(), 1);

  // Resume law: head sojourn back under target, or queue drained.
  EXPECT_TRUE(codel.should_resume(2, 5));
  EXPECT_TRUE(codel.should_resume(50, 0));
  EXPECT_FALSE(codel.should_resume(5, 3));
}

TEST(CodelControl, FixedPointShrinkMatchesFloatReference) {
  // The Q0.32 interval shrink (codel_rec_inv_sqrt + codel_shrunk_interval)
  // against the floating-point law it replaced, sweeping pause counts
  // 1..10^4 over the interval range the admission controller actually
  // uses (auto interval = 2 * reg_depth, spec intervals up to hundreds of
  // rounds). The full 32-bit Newton iteration carries >= 31 significant
  // bits, so the only admissible divergence is the half-ULP rounding of
  // values that land exactly between two integers — within +-1 round by
  // construction, and exact everywhere the product is not a rounding
  // knife-edge. Both behaviors are asserted: never more than 1 apart, and
  // exact for every count the pinned golden scenarios reach (k <= 64).
  const int intervals[] = {1, 2, 7, 10, 14, 100, 1000, 65535};
  for (const int interval : intervals) {
    for (std::uint32_t k = 1; k <= 10000; ++k) {
      const std::int64_t fixed =
          codel_shrunk_interval(interval, codel_rec_inv_sqrt(k));
      const auto reference = static_cast<std::int64_t>(std::llround(
          static_cast<double>(interval) / std::sqrt(static_cast<double>(k))));
      const std::int64_t clamped = reference < 1 ? 1 : reference;
      ASSERT_LE(std::llabs(fixed - clamped), 1)
          << "interval " << interval << " count " << k;
      if (k <= 64) {
        ASSERT_EQ(fixed, clamped)
            << "interval " << interval << " count " << k;
      }
    }
  }
}

TEST(CodelControl, NewtonStepConvergesToKnownRoots) {
  // Perfect squares have exactly representable reciprocal roots: the
  // converged Q0.32 value must hit round(2^32 / sqrt(k)) on the nose.
  EXPECT_EQ(codel_rec_inv_sqrt(1), 0xffffffffU);  // saturated 1.0
  EXPECT_EQ(codel_rec_inv_sqrt(4), 0x80000000U);  // exactly 0.5
  EXPECT_EQ(codel_rec_inv_sqrt(16), 0x40000000U);
  EXPECT_EQ(codel_rec_inv_sqrt(64), 0x20000000U);
  EXPECT_EQ(codel_rec_inv_sqrt(1U << 30), 1U << 17);
  // And the shrink through the saturated 1.0 is the identity.
  for (int interval : {1, 10, 1000, (1 << 30)}) {
    EXPECT_EQ(codel_shrunk_interval(interval, codel_rec_inv_sqrt(1)),
              interval);
  }
}

TEST(QosSpecs, CodelAdmissionParsingAndResolution) {
  const auto plain = parse_admission_spec("codel");
  EXPECT_TRUE(plain.pause());
  EXPECT_TRUE(plain.codel());
  EXPECT_EQ(plain.target, 0);    // auto
  EXPECT_EQ(plain.interval, 0);  // auto

  const auto tuned = parse_admission_spec("codel:target=5,interval=100");
  EXPECT_EQ(tuned.target, 5);
  EXPECT_EQ(tuned.interval, 100);

  // Autos resolve against reg_depth: target reg_depth/2, interval
  // 2*reg_depth, depth backstop at reg_depth, drain re-admission at
  // reg_depth/2.
  const auto resolved = resolve_admission(plain, 7);
  EXPECT_EQ(resolved.target, 3);
  EXPECT_EQ(resolved.interval, 14);
  EXPECT_EQ(resolved.high_water, 7);
  EXPECT_EQ(resolved.low_water, 3);
  const auto kept = resolve_admission(tuned, 7);
  EXPECT_EQ(kept.target, 5);
  EXPECT_EQ(kept.interval, 100);

  // Non-positive marks and options the mode does not understand throw.
  EXPECT_THROW(parse_admission_spec("codel:target=0"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("codel:interval=-1"),
               std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("codel:high=3"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:target=3"), std::invalid_argument);
  // Every offending key is named, not just the first.
  try {
    parse_admission_spec("codel:bogus=1,wrong=2");
    FAIL() << "unknown options must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'bogus'"), std::string::npos) << what;
    EXPECT_NE(what.find("'wrong'"), std::string::npos) << what;
  }
}

TEST(QosSpecs, FqPolicyParsing) {
  const auto names = registered_scheduler_policies();
  EXPECT_NE(std::find(names.begin(), names.end(), "fq"), names.end());
  EXPECT_NO_THROW(make_scheduler_policy("fq"));
  EXPECT_NO_THROW(make_scheduler_policy("fq:quantum=120"));
  EXPECT_THROW(make_scheduler_policy("fq:quantum=0"), std::invalid_argument);
  EXPECT_THROW(make_scheduler_policy("fq:quantum=-5"), std::invalid_argument);
  EXPECT_THROW(make_scheduler_policy("fq:bogus=1"), std::invalid_argument);
  EXPECT_TRUE(make_scheduler_policy("fq")->dynamic());
}

TEST(FqPolicy, GrantsDistinctBackloggedLanesNewListFirst) {
  const auto policy = make_scheduler_policy("fq");
  const std::vector<int> depth = {3, 0, 2, 1};
  const std::vector<std::uint8_t> finished = {0, 0, 0, 0};
  ScheduleView view;
  view.lanes = 4;
  view.engines = 2;
  view.depth = depth.data();
  view.finished = finished.data();
  view.grant_cycles = 10.0;

  std::vector<int> assignment(2, -1);
  std::vector<int> served(4, 0);
  for (int round = 0; round < 12; ++round) {
    view.round = round;
    std::fill(assignment.begin(), assignment.end(), -1);
    policy->assign(view, assignment);
    std::vector<bool> seen(4, false);
    for (const int lane : assignment) {
      ASSERT_GE(lane, 0) << "three lanes are backlogged; no engine idles";
      ASSERT_LT(lane, 4);
      EXPECT_GT(depth[static_cast<std::size_t>(lane)], 0)
          << "an empty lane must never be granted";
      EXPECT_FALSE(seen[static_cast<std::size_t>(lane)])
          << "one lane, two engines in one round";
      seen[static_cast<std::size_t>(lane)] = true;
      ++served[static_cast<std::size_t>(lane)];
    }
  }
  // DRR at equal quantum: the three backlogged lanes share 24 grants
  // evenly; the empty lane gets nothing.
  EXPECT_EQ(served[1], 0);
  EXPECT_EQ(served[0] + served[2] + served[3], 24);
  EXPECT_EQ(served[0], 8);
  EXPECT_EQ(served[2], 8);
  EXPECT_EQ(served[3], 8);
}

TEST(FqPolicy, SkipsPausedAndFinishedLanes) {
  const auto policy = make_scheduler_policy("fq");
  const std::vector<int> depth = {5, 5, 5, 5};
  const std::vector<std::uint8_t> finished = {1, 0, 0, 0};
  const std::vector<std::uint8_t> paused = {0, 1, 0, 0};
  ScheduleView view;
  view.lanes = 4;
  view.engines = 3;
  view.depth = depth.data();
  view.finished = finished.data();
  view.paused = paused.data();
  view.grant_cycles = 10.0;

  std::vector<int> assignment(3, -1);
  for (int round = 0; round < 6; ++round) {
    view.round = round;
    std::fill(assignment.begin(), assignment.end(), -1);
    policy->assign(view, assignment);
    int granted = 0;
    for (const int lane : assignment) {
      if (lane < 0) continue;
      ++granted;
      EXPECT_TRUE(lane == 2 || lane == 3) << "lane " << lane;
    }
    EXPECT_EQ(granted, 2) << "only two lanes are schedulable";
  }
}

/// An all-lanes-backlogged scenario where nothing dies: with an
/// unconstrained cycle budget a granted lane fully drains, an ungranted
/// one queues a couple of layers — queues stay far from reg_depth, and
/// both fq and round_robin rotate over the whole fleet.
StreamConfig backlogged_config() {
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 30;
  config.seed = 7;
  config.engines = 2;
  config.cycles_per_round = 0.0;  // unconstrained per grant
  return config;
}

TEST(FqPolicy, DegeneratesToRoundRobinFairnessAtEqualQuantum) {
  StreamConfig config = backlogged_config();
  const auto trace = record_trace(config);

  config.policy = "fq";
  const auto fq = run_stream(trace, config);
  config.policy = "round_robin";
  const auto rr = run_stream(trace, config);

  // Queues stay shallow in both runs (decode order differs, so logical
  // outcomes may — the comparison here is about *service*, not accuracy).
  ASSERT_EQ(fq.overflow_lanes, 0);
  ASSERT_EQ(rr.overflow_lanes, 0);

  // Equal quantum, everyone perpetually backlogged: DRR is a rotation —
  // service counts as even as the fixed TDM rotation's (Jain ~ 1, spread
  // at most one grant between any two lanes).
  EXPECT_GE(fq.telemetry.fairness_index(),
            rr.telemetry.fairness_index() - 0.01);
  EXPECT_GT(fq.telemetry.fairness_index(), 0.99);
  int fq_min = INT32_MAX, fq_max = 0;
  for (const auto& lane : fq.telemetry.lanes) {
    fq_min = std::min(fq_min, lane.served_rounds);
    fq_max = std::max(fq_max, lane.served_rounds);
  }
  EXPECT_LE(fq_max - fq_min, 2);
}

// Telemetry CSV of the pre-refactor (PR 2) run_stream for lanes=4, d=5,
// p=0.02, rounds=10, seed=7, 60 cycles/round — the same golden capture
// stream_scheduler_test and stream_admission_test pin. The QoS layer
// (sojourn clocks on every lane, grant_cycles in the schedule view) must
// keep overflow+dedicated reproducing it byte for byte.
constexpr const char* kGoldenPr2Csv =
    "lane,distance,p,engine,budget,overflow,drained,logical_fail,rounds,"
    "drain_rounds,popped,total_cycles,cyc_p50,cyc_p95,cyc_p99,cyc_max,"
    "depth_mean,depth_max,depth_0,depth_1,depth_2,depth_3,depth_4,depth_5,"
    "depth_6,depth_7\n"
    "0,5,0.02,qecool,60,0,1,0,11,0,11,94,7,14,14,14,1.3636,3,4,2,2,3,0,0,0,0\n"
    "1,5,0.02,qecool,60,0,1,0,11,2,13,197,7,44,44,44,2.0769,3,1,3,3,6,0,0,0,0\n"
    "2,5,0.02,qecool,60,0,1,0,11,2,13,347,23,72,72,72,2.6923,4,1,1,1,8,2,0,0,0\n"
    "3,5,0.02,qecool,60,0,1,0,11,2,13,131,7,23,23,23,1.6923,3,3,2,4,4,0,0,0,0\n"
    "all,5,0.02,qecool,60,0,4,0,44,6,50,769,7,44,72,72,1.9800,4,9,8,10,21,2,"
    "0,0,0\n";

TEST(QosDeterminism, OverflowDedicatedStaysByteIdenticalToPr4Goldens) {
  StreamConfig config;
  config.lanes = 4;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 10;
  config.seed = 7;
  config.cycles_per_round = 60;
  config.policy = "dedicated";
  config.admission = "overflow";
  EXPECT_EQ(csv_of(run_stream(config), "qos_golden.csv",
                   &StreamTelemetry::write_csv),
            kGoldenPr2Csv);
}

TEST(QosDeterminism, CodelFqOutcomesThreadCountInvariant) {
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 12;
  config.seed = 7;
  config.engines = 2;
  config.policy = "fq";
  config.cycles_per_round = 20;  // starved enough to trigger codel pauses
  config.admission = "codel";
  const auto trace = record_trace(config);

  config.threads = 1;
  const auto serial = run_stream(trace, config);
  config.threads = 4;
  const auto parallel = run_stream(trace, config);

  EXPECT_GT(serial.telemetry.ever_paused_lanes(), 0)
      << "the scenario must actually exercise codel pauses";
  EXPECT_EQ(csv_of(serial, "qos_t1.csv", &StreamTelemetry::write_csv),
            csv_of(parallel, "qos_t4.csv", &StreamTelemetry::write_csv));
  EXPECT_EQ(
      csv_of(serial, "qos_s1.csv", &StreamTelemetry::write_schedule_csv),
      csv_of(parallel, "qos_s4.csv", &StreamTelemetry::write_schedule_csv));
  EXPECT_EQ(
      csv_of(serial, "qos_r1.csv", &StreamTelemetry::write_timeline_csv),
      csv_of(parallel, "qos_r4.csv", &StreamTelemetry::write_timeline_csv));
  EXPECT_EQ(
      csv_of(serial, "qos_l1.csv", &StreamTelemetry::write_latency_csv),
      csv_of(parallel, "qos_l4.csv", &StreamTelemetry::write_latency_csv));
}

TEST(QosDeterminism, SojournAccountingIsConsistent) {
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 12;
  config.seed = 7;
  config.engines = 2;
  config.policy = "least_loaded";
  config.cycles_per_round = 20;
  config.admission = "pause";
  const auto outcome = run_stream(config);

  for (const auto& lane : outcome.telemetry.lanes) {
    // Every decoded trace layer produced exactly one sample; a drained
    // lane decoded them all. Sojourns count at least the arrival round.
    EXPECT_LE(lane.sojourn_rounds.size(),
              static_cast<std::size_t>(lane.rounds_streamed));
    if (lane.drained) {
      EXPECT_EQ(lane.sojourn_rounds.size(),
                static_cast<std::size_t>(lane.rounds_streamed));
    }
    for (const std::uint64_t s : lane.sojourn_rounds) EXPECT_GE(s, 1u);
    EXPECT_LE(lane.sojourn_percentile(50), lane.sojourn_percentile(99));
  }
}

/// The acceptance scenario: a shared pool at K < N under real sampled
/// noise, starved enough that every admission mode pauses (or loses)
/// lanes. CoDel pauses on sustained sojourn *before* the queue fills, so
/// its end-to-end p99 must not exceed depth-triggered pause mode's, while
/// keeping at least as many lanes alive.
TEST(QosAcceptance, CodelP99SojournNoWorseThanPauseAtKLessThanN) {
  StreamConfig config;
  config.lanes = 16;
  config.distance = 5;
  config.p = 0.01;
  config.rounds = 96;
  config.seed = 2021;
  config.engines = 4;  // K < N
  config.policy = "least_loaded";
  config.cycles_per_round = 40;
  const auto trace = record_trace(config);

  config.admission = "pause";
  const auto pause = run_stream(trace, config);
  config.admission = "codel";
  const auto codel = run_stream(trace, config);

  ASSERT_GT(pause.telemetry.ever_paused_lanes(), 0)
      << "the scenario must actually be over-subscribed";
  ASSERT_GT(codel.telemetry.ever_paused_lanes(), 0);

  const auto pause_all = pause.telemetry.aggregate();
  const auto codel_all = codel.telemetry.aggregate();
  EXPECT_LE(codel_all.sojourn_percentile(99), pause_all.sojourn_percentile(99));
  EXPECT_LE(codel.failed_lanes, pause.failed_lanes);

  // The latency CSV reports every lane — paused lanes included — plus the
  // aggregate row, each with its own percentiles.
  const std::string csv =
      csv_of(codel, "qos_lat.csv", &StreamTelemetry::write_latency_csv);
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, static_cast<std::size_t>(config.lanes) + 2);  // header + lanes + all
  for (const auto& lane : codel.telemetry.lanes) {
    if (lane.pauses > 0) {
      EXPECT_GT(lane.sojourn_rounds.size(), 0u)
          << "paused lane " << lane.lane
          << " must still report its latency distribution";
    }
  }
}

}  // namespace
}  // namespace qec
