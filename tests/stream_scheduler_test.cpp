// Tests for the shared decoder-engine pool: the dedicated K == N policy
// reproduces the pre-pool (PR 2) service byte for byte, scheduling
// outcomes are pure functions of (trace, config) for any thread count or
// dispatch batching, a backpressure-aware policy saves a bursty lane a
// fixed rotation loses, and the scheduling telemetry accounts exactly.
#include "stream/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "stream/service.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string csv_of(const StreamOutcome& outcome, const char* name) {
  const std::string path = temp_path(name);
  EXPECT_TRUE(outcome.telemetry.write_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

std::string schedule_csv_of(const StreamOutcome& outcome, const char* name) {
  const std::string path = temp_path(name);
  EXPECT_TRUE(outcome.telemetry.write_schedule_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

std::string timeline_csv_of(const StreamOutcome& outcome, const char* name) {
  const std::string path = temp_path(name);
  EXPECT_TRUE(outcome.telemetry.write_timeline_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

bool same_outcomes(const StreamTelemetry& a, const StreamTelemetry& b) {
  if (a.lanes.size() != b.lanes.size()) return false;
  for (std::size_t i = 0; i < a.lanes.size(); ++i) {
    const auto& la = a.lanes[i];
    const auto& lb = b.lanes[i];
    if (la.overflow != lb.overflow || la.drained != lb.drained ||
        la.logical_failure != lb.logical_failure ||
        la.rounds_streamed != lb.rounds_streamed ||
        la.drain_rounds != lb.drain_rounds ||
        la.served_rounds != lb.served_rounds ||
        la.starved_rounds != lb.starved_rounds ||
        la.total_cycles != lb.total_cycles ||
        la.depth_hist != lb.depth_hist ||
        la.layer_cycles != lb.layer_cycles) {
      return false;
    }
  }
  return true;
}

// Telemetry CSV of the pre-refactor (PR 2) run_stream for lanes=4, d=5,
// p=0.02, rounds=10, seed=7, 60 cycles/round — captured from the
// one-engine-per-lane implementation before the pool existed. The
// dedicated K == N policy must reproduce it byte for byte, forever.
constexpr const char* kGoldenPr2Csv =
    "lane,distance,p,engine,budget,overflow,drained,logical_fail,rounds,"
    "drain_rounds,popped,total_cycles,cyc_p50,cyc_p95,cyc_p99,cyc_max,"
    "depth_mean,depth_max,depth_0,depth_1,depth_2,depth_3,depth_4,depth_5,"
    "depth_6,depth_7\n"
    "0,5,0.02,qecool,60,0,1,0,11,0,11,94,7,14,14,14,1.3636,3,4,2,2,3,0,0,0,0\n"
    "1,5,0.02,qecool,60,0,1,0,11,2,13,197,7,44,44,44,2.0769,3,1,3,3,6,0,0,0,0\n"
    "2,5,0.02,qecool,60,0,1,0,11,2,13,347,23,72,72,72,2.6923,4,1,1,1,8,2,0,0,0\n"
    "3,5,0.02,qecool,60,0,1,0,11,2,13,131,7,23,23,23,1.6923,3,3,2,4,4,0,0,0,0\n"
    "all,5,0.02,qecool,60,0,4,0,44,6,50,769,7,44,72,72,1.9800,4,9,8,10,21,2,"
    "0,0,0\n";

// Same capture for a starved clock (lanes=5, d=7, p=0.03, rounds=20,
// seed=11, 4 cycles/round): every lane overflows — the failure paths must
// stay byte-identical too.
constexpr const char* kGoldenPr2StarvedCsv =
    "lane,distance,p,engine,budget,overflow,drained,logical_fail,rounds,"
    "drain_rounds,popped,total_cycles,cyc_p50,cyc_p95,cyc_p99,cyc_max,"
    "depth_mean,depth_max,depth_0,depth_1,depth_2,depth_3,depth_4,depth_5,"
    "depth_6,depth_7\n"
    "0,7,0.03,qecool,4,1,0,0,7,0,0,32,0,0,0,0,4.3750,7,0,1,1,1,1,1,1,2\n"
    "1,7,0.03,qecool,4,1,0,0,7,0,0,38,0,0,0,0,4.3750,7,0,1,1,1,1,1,1,2\n"
    "2,7,0.03,qecool,4,1,0,0,8,0,1,41,9,9,9,9,4.0000,7,0,2,1,1,1,1,1,2\n"
    "3,7,0.03,qecool,4,1,0,0,7,0,0,24,0,0,0,0,4.3750,7,0,1,1,1,1,1,1,2\n"
    "4,7,0.03,qecool,4,1,0,0,7,0,0,34,0,0,0,0,4.3750,7,0,1,1,1,1,1,1,2\n"
    "all,7,0.03,qecool,4,5,0,0,36,0,1,169,9,9,9,9,4.2927,7,0,6,5,5,5,5,5,10\n";

StreamConfig golden_config() {
  StreamConfig config;
  config.lanes = 4;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 10;
  config.seed = 7;
  config.cycles_per_round = 60;
  return config;
}

TEST(StreamScheduler, DedicatedFullPoolMatchesPr2ByteForByte) {
  StreamConfig config = golden_config();
  EXPECT_EQ(csv_of(run_stream(config), "golden.csv"), kGoldenPr2Csv);

  // Explicit K == N spelled out behaves the same as the engines<=0 default.
  config.engines = config.lanes;
  config.policy = "dedicated";
  EXPECT_EQ(csv_of(run_stream(config), "golden_explicit.csv"), kGoldenPr2Csv);

  StreamConfig starved;
  starved.lanes = 5;
  starved.distance = 7;
  starved.p = 0.03;
  starved.rounds = 20;
  starved.seed = 11;
  starved.cycles_per_round = 4;
  EXPECT_EQ(csv_of(run_stream(starved), "golden_starved.csv"),
            kGoldenPr2StarvedCsv);
}

TEST(StreamScheduler, RoundRobinFullPoolEqualsDedicated) {
  // With K == N the rotation covers every lane every round, so the fixed
  // rotation degenerates to the dedicated assignment.
  StreamConfig config = golden_config();
  config.policy = "round_robin";
  config.engines = config.lanes;
  EXPECT_EQ(csv_of(run_stream(config), "rr_full.csv"), kGoldenPr2Csv);
}

TEST(StreamScheduler, LeastLoadedOutcomesThreadCountInvariant) {
  StreamConfig config = golden_config();
  config.lanes = 6;
  config.engines = 2;
  config.policy = "least_loaded";
  const auto trace = record_trace(config);

  config.threads = 1;
  const auto serial = run_stream(trace, config);
  config.threads = 4;
  const auto parallel = run_stream(trace, config);

  EXPECT_TRUE(same_outcomes(serial.telemetry, parallel.telemetry));
  EXPECT_EQ(csv_of(serial, "ll_t1.csv"), csv_of(parallel, "ll_t4.csv"));
  EXPECT_EQ(schedule_csv_of(serial, "ll_s1.csv"),
            schedule_csv_of(parallel, "ll_s4.csv"));
  EXPECT_EQ(timeline_csv_of(serial, "ll_r1.csv"),
            timeline_csv_of(parallel, "ll_r4.csv"));
}

TEST(StreamScheduler, DispatchBatchingNeverChangesOutcomes) {
  // Static policies amortize the per-round barrier; outcomes and every
  // CSV must be bit-equal for any rounds_per_dispatch.
  StreamConfig config = golden_config();
  config.lanes = 6;
  config.engines = 3;
  config.policy = "round_robin";
  const auto trace = record_trace(config);

  const auto one = run_stream(trace, config);
  config.rounds_per_dispatch = 5;
  const auto batched = run_stream(trace, config);
  config.rounds_per_dispatch = 64;  // far beyond the round count
  const auto huge = run_stream(trace, config);

  EXPECT_TRUE(same_outcomes(one.telemetry, batched.telemetry));
  EXPECT_TRUE(same_outcomes(one.telemetry, huge.telemetry));
  EXPECT_EQ(csv_of(one, "b1.csv"), csv_of(batched, "b5.csv"));
  EXPECT_EQ(schedule_csv_of(one, "bs1.csv"),
            schedule_csv_of(batched, "bs5.csv"));
  EXPECT_EQ(timeline_csv_of(one, "br1.csv"),
            timeline_csv_of(huge, "br64.csv"));

  // A run whose drain ends in the middle of a dispatch batch: the phantom
  // tail rounds of the last batch must not leak into engine accounting
  // (idle rounds) or the timeline — schedule CSVs stay bit-equal and the
  // engine rounds cover exactly the timeline rounds.
  StreamConfig tail = golden_config();
  tail.lanes = 8;
  tail.engines = 4;
  tail.policy = "round_robin";
  tail.rounds = 50;
  tail.cycles_per_round = 2000;
  const auto tail_trace = record_trace(tail);
  const auto tail_one = run_stream(tail_trace, tail);
  tail.rounds_per_dispatch = 16;
  const auto tail_batched = run_stream(tail_trace, tail);
  EXPECT_EQ(schedule_csv_of(tail_one, "ts1.csv"),
            schedule_csv_of(tail_batched, "ts16.csv"));
  EXPECT_EQ(timeline_csv_of(tail_one, "tr1.csv"),
            timeline_csv_of(tail_batched, "tr16.csv"));
  for (const auto& e : tail_batched.telemetry.engine_stats) {
    EXPECT_EQ(e.busy_rounds + e.idle_rounds,
              static_cast<std::int64_t>(tail_batched.telemetry.timeline.size()));
  }

  // Dynamic policies need fresh queue depths every round: the batch knob
  // clamps to 1 and outcomes stay put.
  config.policy = "least_loaded";
  config.rounds_per_dispatch = 1;
  const auto ll_one = run_stream(trace, config);
  config.rounds_per_dispatch = 8;
  const auto ll_batched = run_stream(trace, config);
  EXPECT_TRUE(same_outcomes(ll_one.telemetry, ll_batched.telemetry));
  EXPECT_EQ(timeline_csv_of(ll_one, "llb1.csv"),
            timeline_csv_of(ll_batched, "llb8.csv"));
}

/// One bursty lane among quiet ones, served by a single shared engine: the
/// fixed rotation visits the bursty lane once every N rounds regardless of
/// backlog and loses it to Reg overflow; the backpressure-aware policy
/// follows queue depth and keeps every lane alive.
SyndromeTrace bursty_trace(int lanes, int rounds, int bursty_lane) {
  const PlanarLattice lattice(5);
  TraceHeader header;
  header.distance = 5;
  header.lanes = static_cast<std::uint32_t>(lanes);
  header.rounds = static_cast<std::uint32_t>(rounds);
  header.checks = static_cast<std::uint32_t>(lattice.num_checks());
  header.data_qubits = static_cast<std::uint32_t>(lattice.num_data());
  SyndromeTrace trace(header);
  // Burst: defect pairs toggling in the bursty lane's mid-run rounds
  // (difference bits set, so every burst layer carries matching work; an
  // even number of identical layers keeps the stream consistent with the
  // all-zero ground-truth final error).
  for (int round = 4; round < rounds - 6 && round < 24; ++round) {
    BitVec layer(static_cast<std::size_t>(lattice.num_checks()), 0);
    for (const int check : {0, 3, 9, 14, 16, 19}) {
      layer[static_cast<std::size_t>(check)] = 1;
    }
    trace.set_layer(bursty_lane, round, std::move(layer));
  }
  return trace;
}

TEST(StreamScheduler, LeastLoadedSavesBurstyLaneRoundRobinLoses) {
  const int lanes = 4;
  const int bursty = 2;
  const auto trace = bursty_trace(lanes, 40, bursty);

  StreamConfig config;
  config.lanes = lanes;
  config.distance = 5;
  config.engines = 1;  // one engine for four lanes
  config.cycles_per_round = 60;
  config.max_drain_rounds = 400;

  config.policy = "round_robin";
  const auto rr = run_stream(trace, config);
  EXPECT_TRUE(rr.telemetry.lanes[bursty].overflow)
      << "a fixed rotation must lose the bursty lane at K = 1";

  config.policy = "least_loaded";
  const auto ll = run_stream(trace, config);
  for (const auto& lane : ll.telemetry.lanes) {
    EXPECT_FALSE(lane.overflow) << "lane " << lane.lane;
    EXPECT_TRUE(lane.drained) << "lane " << lane.lane;
  }
  // The rescue is visible in the scheduling telemetry: the bursty lane
  // drew more service than its fair 1/N share.
  const auto& served = ll.telemetry.lanes[bursty].served_rounds;
  for (const auto& lane : ll.telemetry.lanes) {
    if (lane.lane != bursty) {
      EXPECT_GE(served, lane.served_rounds);
    }
  }
}

TEST(StreamScheduler, PolicyAndPoolSpecsFailLoudly) {
  StreamConfig config = golden_config();
  config.policy = "fifo";
  EXPECT_THROW(run_stream(config), std::invalid_argument);
  config.policy = "least_loaded:bogus_knob=1";
  EXPECT_THROW(run_stream(config), std::invalid_argument);
  config.policy = "dedicated";
  config.engines = config.lanes - 1;  // dedicated demands K == N
  EXPECT_THROW(run_stream(config), std::invalid_argument);
  config.policy = "round_robin";
  config.engines = config.lanes + 1;  // more engines than lanes
  EXPECT_THROW(run_stream(config), std::invalid_argument);
  config.engines = 2;
  config.policy = "round_robin:offset=3";  // options parse like decoders
  EXPECT_NO_THROW(run_stream(config));

  EXPECT_THROW(make_scheduler_policy("round_robin:offset=x"),
               std::invalid_argument);
  const auto names = registered_scheduler_policies();
  EXPECT_NE(std::find(names.begin(), names.end(), "dedicated"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "round_robin"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "least_loaded"),
            names.end());
}

TEST(StreamScheduler, ScheduleAccountingIsConsistent) {
  StreamConfig config = golden_config();
  config.lanes = 6;
  config.engines = 2;
  config.policy = "least_loaded";
  config.cycles_per_round = 200;  // ample: no lane overflows
  const auto outcome = run_stream(config);
  ASSERT_EQ(outcome.overflow_lanes, 0);
  const auto& t = outcome.telemetry;
  ASSERT_EQ(t.engine_stats.size(), 2u);

  // Every engine is accounted for in every scheduled round, and with no
  // overflow every scheduled round has live lanes, so the timeline holds
  // exactly the scheduled rounds.
  const auto scheduled = static_cast<std::int64_t>(t.timeline.size());
  std::int64_t busy = 0;
  std::uint64_t engine_cycles = 0;
  for (const auto& e : t.engine_stats) {
    EXPECT_EQ(e.busy_rounds + e.idle_rounds, scheduled);
    busy += e.busy_rounds;
    engine_cycles += e.cycles;
  }

  // Grants: each served lane-round maps to exactly one busy engine-round.
  std::int64_t served = 0, starved = 0;
  std::uint64_t lane_cycles = 0;
  for (const auto& lane : t.lanes) {
    served += lane.served_rounds;
    starved += lane.starved_rounds;
    lane_cycles += lane.total_cycles;
    // A lane is served at most once per round it took part in.
    EXPECT_LE(lane.served_rounds,
              lane.rounds_streamed + lane.drain_rounds);
  }
  EXPECT_EQ(busy, served);
  EXPECT_EQ(engine_cycles, lane_cycles)
      << "every consumed cycle flows through exactly one pool engine";

  // The timeline tells the same story round by round.
  std::int64_t tl_served = 0, tl_starved = 0, tl_live = 0;
  std::uint64_t tl_cycles = 0;
  for (const auto& s : t.timeline) {
    EXPECT_LE(s.served_lanes, config.engines);
    EXPECT_LE(s.depth_max, 7) << "depth cannot exceed reg_depth";
    tl_served += s.served_lanes;
    tl_starved += s.starved_lanes;
    tl_live += s.live_lanes;
    tl_cycles += s.cycles;
  }
  EXPECT_EQ(tl_served, served);
  EXPECT_EQ(tl_starved, starved);
  EXPECT_EQ(tl_cycles, engine_cycles);
  std::int64_t lane_rounds = 0;
  for (const auto& lane : t.lanes) {
    lane_rounds += lane.rounds_streamed + lane.drain_rounds;
  }
  EXPECT_EQ(tl_live, lane_rounds);

  const double fairness = t.fairness_index();
  EXPECT_GT(fairness, 1.0 / static_cast<double>(config.lanes) - 1e-12);
  EXPECT_LE(fairness, 1.0 + 1e-12);
}

TEST(StreamScheduler, FairnessIndexFormula) {
  StreamTelemetry t;
  t.lanes.resize(3);
  for (auto& lane : t.lanes) lane.served_rounds = 5;
  EXPECT_DOUBLE_EQ(t.fairness_index(), 1.0);
  t.lanes[0].served_rounds = 10;
  t.lanes[1].served_rounds = 0;
  t.lanes[2].served_rounds = 0;
  EXPECT_NEAR(t.fairness_index(), 1.0 / 3.0, 1e-12);
  for (auto& lane : t.lanes) lane.served_rounds = 0;
  EXPECT_DOUBLE_EQ(t.fairness_index(), 1.0) << "nothing served: vacuously fair";
}

}  // namespace
}  // namespace qec
