// Tests for the streaming decode service: lane determinism (thread count
// never changes outcomes or the telemetry CSV), record/replay fidelity,
// telemetry accounting, and engine-spec validation.
#include "stream/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "qecool/online_runner.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

StreamConfig base_config() {
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 12;
  config.seed = 7;
  config.cycles_per_round = 400;
  return config;
}

bool same_outcomes(const StreamTelemetry& a, const StreamTelemetry& b) {
  if (a.lanes.size() != b.lanes.size()) return false;
  for (std::size_t i = 0; i < a.lanes.size(); ++i) {
    const auto& la = a.lanes[i];
    const auto& lb = b.lanes[i];
    if (la.overflow != lb.overflow || la.drained != lb.drained ||
        la.logical_failure != lb.logical_failure ||
        la.rounds_streamed != lb.rounds_streamed ||
        la.drain_rounds != lb.drain_rounds ||
        la.popped_layers != lb.popped_layers ||
        la.total_cycles != lb.total_cycles ||
        la.depth_hist != lb.depth_hist ||
        la.layer_cycles != lb.layer_cycles) {
      return false;
    }
  }
  return true;
}

TEST(StreamService, ThreadCountNeverChangesOutcomeOrCsv) {
  StreamConfig config = base_config();
  const auto trace = record_trace(config);

  config.threads = 1;
  const auto serial = run_stream(trace, config);
  const std::string serial_csv = temp_path("stream_t1.csv");
  ASSERT_TRUE(serial.telemetry.write_csv(serial_csv));

  config.threads = 4;
  const auto parallel = run_stream(trace, config);
  const std::string parallel_csv = temp_path("stream_t4.csv");
  ASSERT_TRUE(parallel.telemetry.write_csv(parallel_csv));

  EXPECT_TRUE(same_outcomes(serial.telemetry, parallel.telemetry));
  EXPECT_EQ(read_all(serial_csv), read_all(parallel_csv))
      << "telemetry CSV must be byte-identical across thread counts";
  std::remove(serial_csv.c_str());
  std::remove(parallel_csv.c_str());

  // Recording is thread-count independent too.
  StreamConfig rec = base_config();
  rec.threads = 4;
  EXPECT_TRUE(trace == record_trace(rec));
}

TEST(StreamService, ReplayReproducesRecordedRunExactly) {
  const StreamConfig config = base_config();
  const auto trace = record_trace(config);
  const auto original = run_stream(trace, config);

  const std::string path = temp_path("replay.qtrc");
  trace.save(path);
  const auto reloaded = SyndromeTrace::load(path);
  const auto replayed = run_stream(reloaded, config);
  std::remove(path.c_str());

  ASSERT_EQ(original.lanes, replayed.lanes);
  EXPECT_EQ(original.overflow_lanes, replayed.overflow_lanes);
  EXPECT_EQ(original.drained_lanes, replayed.drained_lanes);
  EXPECT_EQ(original.logical_failures, replayed.logical_failures);
  EXPECT_TRUE(same_outcomes(original.telemetry, replayed.telemetry));
}

TEST(StreamService, UnconstrainedLanesAllDrain) {
  StreamConfig config = base_config();
  config.cycles_per_round = 0.0;
  const auto outcome = run_stream(config);
  EXPECT_EQ(outcome.overflow_lanes, 0);
  EXPECT_EQ(outcome.drained_lanes, outcome.lanes);
  for (const auto& lane : outcome.telemetry.lanes) {
    // Every stored layer the lane accepted was eventually popped.
    EXPECT_EQ(lane.popped_layers, lane.rounds_streamed + lane.drain_rounds);
  }
}

TEST(StreamService, StarvedClockOverflowsLanes) {
  StreamConfig config = base_config();
  config.distance = 9;
  config.p = 0.02;
  config.rounds = 24;
  config.cycles_per_round = 2;
  const auto outcome = run_stream(config);
  EXPECT_GT(outcome.overflow_lanes, 0)
      << "a 2-cycle budget cannot serve d=9 lanes";
  for (const auto& lane : outcome.telemetry.lanes) {
    if (lane.overflow) {
      EXPECT_FALSE(lane.drained);
      EXPECT_TRUE(lane.failed());
    }
  }
}

TEST(StreamService, MatchesSingleLaneRunOnline) {
  // One lane through the service == run_online on the same history: the
  // scheduler adds scheduling, never behaviour.
  StreamConfig config = base_config();
  config.lanes = 3;
  const auto trace = record_trace(config);
  const auto outcome = run_stream(trace, config);

  const PlanarLattice lattice(config.distance);
  OnlineConfig online;
  online.cycles_per_round = config.cycles_per_round;
  online.max_drain_rounds = config.max_drain_rounds;
  for (int lane = 0; lane < trace.lanes(); ++lane) {
    const auto direct = run_online(lattice, trace.history(lane), online);
    const auto& t = outcome.telemetry.lanes[static_cast<std::size_t>(lane)];
    EXPECT_EQ(direct.overflow, t.overflow);
    EXPECT_EQ(direct.drained, t.drained);
    EXPECT_EQ(direct.total_cycles, t.total_cycles);
    EXPECT_EQ(direct.layer_cycles, t.layer_cycles);
  }
}

TEST(StreamService, TelemetryAccountingIsConsistent) {
  const StreamConfig config = base_config();
  const auto outcome = run_stream(config);
  const auto all = outcome.telemetry.aggregate();
  std::uint64_t depth_rounds = 0;
  for (const auto c : all.depth_hist) depth_rounds += c;
  std::uint64_t expected = 0;
  std::uint64_t cycles = 0;
  for (const auto& lane : outcome.telemetry.lanes) {
    // Every streamed or drain round records exactly one depth sample
    // (overflow rounds record one too, without counting as streamed).
    expected += static_cast<std::uint64_t>(lane.rounds_streamed) +
                static_cast<std::uint64_t>(lane.drain_rounds) +
                (lane.overflow ? 1 : 0);
    cycles += lane.total_cycles;
    EXPECT_EQ(static_cast<int>(lane.layer_cycles.size()), lane.popped_layers);
  }
  EXPECT_EQ(depth_rounds, expected);
  EXPECT_EQ(all.total_cycles, cycles);
  // Percentiles are order statistics of the pooled samples.
  const auto p50 = all.cycle_percentile(50);
  const auto p99 = all.cycle_percentile(99);
  EXPECT_LE(p50, p99);
  EXPECT_EQ(all.cycle_percentile(100),
            percentile_nearest_rank(all.layer_cycles, 100));
}

TEST(StreamService, RejectsNonOnlineEngineSpecs) {
  StreamConfig config = base_config();
  config.engine = "mwpm";
  EXPECT_THROW(run_stream(config), std::invalid_argument);
  config.engine = "qecool:bogus_knob=1";
  EXPECT_THROW(run_stream(config), std::invalid_argument);
  config.engine = "qecool:reg_depth=4";
  EXPECT_NO_THROW(run_stream(config));
}

TEST(StreamService, RegDepthSpecShapesDepthHistogram) {
  StreamConfig config = base_config();
  config.engine = "qecool:reg_depth=4";
  const auto outcome = run_stream(config);
  for (const auto& lane : outcome.telemetry.lanes) {
    EXPECT_EQ(lane.depth_hist.size(), 5u);  // depths 0..4
    EXPECT_LE(lane.max_depth(), 4);
  }
}

}  // namespace
}  // namespace qec
