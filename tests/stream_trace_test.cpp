// Tests for the versioned binary syndrome trace: round-trips, lane
// reconstruction, and the hard requirement that corrupt or truncated files
// throw TraceError instead of producing garbage.
#include "stream/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "stream/service.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

StreamConfig small_config() {
  StreamConfig config;
  config.lanes = 4;
  config.distance = 5;
  config.p = 0.03;
  config.rounds = 6;
  config.seed = 99;
  return config;
}

TEST(StreamTrace, PackUnpackRoundTrip) {
  BitVec bits = {1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1};
  const auto packed = pack_bits(bits);
  EXPECT_EQ(packed.size(), 2u);  // 11 bits -> 2 bytes
  EXPECT_EQ(unpack_bits(packed.data(), bits.size()), bits);
}

TEST(StreamTrace, SaveLoadRoundTrip) {
  const auto trace = record_trace(small_config());
  const std::string path = temp_path("roundtrip.qtrc");
  trace.save(path);
  const auto loaded = SyndromeTrace::load(path);
  EXPECT_TRUE(trace == loaded);
  EXPECT_EQ(loaded.lanes(), 4);
  EXPECT_EQ(loaded.rounds(), 7);  // 6 noisy + 1 perfect
  EXPECT_EQ(loaded.header().seed, 99u);
  EXPECT_DOUBLE_EQ(loaded.header().p_data, 0.03);
  std::remove(path.c_str());
}

TEST(StreamTrace, HistoryReconstructionMatchesRecordedNoise) {
  const StreamConfig config = small_config();
  const auto trace = record_trace(config);
  const PlanarLattice lattice(config.distance);
  for (int lane = 0; lane < trace.lanes(); ++lane) {
    const SyndromeHistory h = trace.history(lane);
    ASSERT_EQ(static_cast<int>(h.difference.size()), trace.rounds());
    ASSERT_EQ(h.measured.size(), h.difference.size());
    ASSERT_EQ(difference_syndromes(h.measured), h.difference);
    // The last measured round is perfect, so it must equal the syndrome of
    // the recorded ground-truth error.
    ASSERT_EQ(h.measured.back(), lattice.syndrome(h.final_error));
  }
}

TEST(StreamTrace, LanesDifferAndAreSeedStable) {
  const auto a = record_trace(small_config());
  const auto b = record_trace(small_config());
  EXPECT_TRUE(a == b) << "recording must be a pure function of the config";
  StreamConfig other = small_config();
  other.seed = 100;
  EXPECT_FALSE(a == record_trace(other));
  // At p = 0.03 two lanes sharing a stream would be a glaring RNG bug.
  EXPECT_NE(a.history(0).difference, a.history(1).difference);
}

TEST(StreamTrace, TruncatedFileThrows) {
  const auto trace = record_trace(small_config());
  const std::string path = temp_path("truncated.qtrc");
  trace.save(path);
  auto bytes = read_all(path);
  ASSERT_GT(bytes.size(), 20u);
  bytes.resize(bytes.size() / 2);
  write_all(path, bytes);
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  bytes.resize(10);  // shorter than the header
  write_all(path, bytes);
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  std::remove(path.c_str());
}

TEST(StreamTrace, CorruptPayloadThrows) {
  const auto trace = record_trace(small_config());
  const std::string path = temp_path("corrupt.qtrc");
  trace.save(path);
  auto bytes = read_all(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_all(path, bytes);
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  std::remove(path.c_str());
}

TEST(StreamTrace, BadMagicAndVersionThrow) {
  const auto trace = record_trace(small_config());
  const std::string path = temp_path("magic.qtrc");
  trace.save(path);
  auto bytes = read_all(path);
  auto tampered = bytes;
  tampered[0] = 'X';
  write_all(path, tampered);
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  tampered = bytes;
  tampered[4] = 99;  // unsupported version
  write_all(path, tampered);
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  std::remove(path.c_str());
}

TEST(StreamTrace, InconsistentDimensionsThrow) {
  const auto trace = record_trace(small_config());
  const std::string path = temp_path("dims.qtrc");
  trace.save(path);
  auto bytes = read_all(path);
  bytes[8] = 7;  // distance 5 -> 7 without touching checks/data counts
  write_all(path, bytes);
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  std::remove(path.c_str());
}

/// Serializes a hand-crafted v1 trace file: the given header fields, a
/// payload of `payload_bytes` zero bytes, and a *valid* FNV-1a checksum
/// over that payload — so only the header/length validation can reject
/// it, never the checksum. The checksum comes from the production
/// SyndromeTrace::rewrite_payload (the fuzz-mutation entry point), which
/// by contract signs whatever payload is present without validating it.
std::vector<char> craft_trace(std::uint32_t distance, std::uint32_t lanes,
                              std::uint32_t rounds, std::uint32_t checks,
                              std::uint32_t data_qubits,
                              std::size_t payload_bytes) {
  std::vector<std::uint8_t> blob;
  const auto put32 = [&blob](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      blob.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  const auto put64 = [&blob](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      blob.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put32(TraceHeader::kMagic);
  put32(TraceHeader::kVersion);
  put32(distance);
  put32(lanes);
  put32(rounds);
  put32(checks);
  put32(data_qubits);
  put64(0);  // seed
  put64(0);  // p_data (0.0 bits)
  put64(0);  // p_meas
  blob.insert(blob.end(), payload_bytes + 8, 0);  // payload + checksum slot
  SyndromeTrace::rewrite_payload(blob);
  return std::vector<char>(blob.begin(), blob.end());
}

TEST(StreamTrace, ChecksumValidButTruncatedPayloadThrows) {
  // d=5: 3-byte layers, 6-byte final errors. The header claims 2 lanes x
  // 4 rounds (2*4*3 + 2*6 = 36 payload bytes) but the file carries only
  // 30 — with a checksum that is *valid over the 30 bytes present*, so a
  // loader that trusts the checksum alone would accept a file missing
  // two syndrome layers. The length check must reject it first.
  const std::string path = temp_path("short_but_checksummed.qtrc");
  write_all(path, craft_trace(5, 2, 4, 20, 41, 30));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  // Same with trailing garbage: 36 expected, 40 present, checksum valid
  // over all 40.
  write_all(path, craft_trace(5, 2, 4, 20, 41, 40));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  // The exact length with a valid checksum loads fine (the crafted
  // all-zero payload is a legal trace).
  write_all(path, craft_trace(5, 2, 4, 20, 41, 36));
  EXPECT_NO_THROW(SyndromeTrace::load(path));
  std::remove(path.c_str());
}

TEST(StreamTrace, MaxU32RoundsThrowsBeforeAllocating) {
  // rounds = 2^32 - 1 with one lane claims a ~12.9 GB payload; the file
  // carries 36 bytes. The loader must reject on the length check without
  // ever sizing a buffer from the header.
  const std::uint32_t max_u32 = 0xFFFFFFFFu;
  const std::string path = temp_path("max_rounds.qtrc");
  write_all(path, craft_trace(5, 1, max_u32, 20, 41, 36));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  // Same for max-u32 lanes, and for both at once (whose layer count
  // approaches 2^64 — the size arithmetic must not wrap on the way to
  // the rejection either).
  write_all(path, craft_trace(5, max_u32, 1, 20, 41, 36));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  write_all(path, craft_trace(5, max_u32, max_u32, 20, 41, 36));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  std::remove(path.c_str());
}

TEST(StreamTrace, DegenerateAndInconsistentHeadersThrow) {
  const std::string path = temp_path("degenerate.qtrc");
  // Zero lanes / zero rounds.
  write_all(path, craft_trace(5, 0, 4, 20, 41, 0));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  write_all(path, craft_trace(5, 2, 0, 20, 41, 12));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  // Implausible distances (too small, too large to be a real lattice).
  write_all(path, craft_trace(1, 2, 4, 0, 1, 8));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  write_all(path, craft_trace(2000, 2, 4, 3998000, 7996001, 8));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  // check/data counts that do not match the claimed distance.
  write_all(path, craft_trace(5, 2, 4, 21, 41, 36));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  write_all(path, craft_trace(5, 2, 4, 20, 40, 36));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  std::remove(path.c_str());
}

TEST(StreamTrace, WrappingSizeHeaderThrowsInsteadOfAllocating) {
  // Adversarial header: at d=5 (3-byte layers, 6-byte final errors) the
  // payload size 3*lanes*rounds + 6*lanes of these lane/round counts is
  // ~18.4 EB but wraps modulo 2^64 to exactly 41258 — a file that, with
  // unchecked size arithmetic, passes the length and checksum tests and
  // then tries to allocate 6.1e18 layer vectors. The loader must reject it
  // with TraceError before any allocation.
  const std::uint32_t lanes = 1431693603u;
  const std::uint32_t rounds = 4294853784u;
  const std::size_t wrapped_payload = 41258;

  std::vector<std::uint8_t> blob;
  const auto put32 = [&blob](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      blob.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  const auto put64 = [&blob](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      blob.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put32(TraceHeader::kMagic);
  put32(TraceHeader::kVersion);
  put32(5);   // distance
  put32(lanes);
  put32(rounds);
  put32(20);  // checks = d*(d-1)
  put32(41);  // data qubits = d*d + (d-1)*(d-1)
  put64(0);   // seed
  put64(0);   // p_data (0.0 bits)
  put64(0);   // p_meas
  blob.insert(blob.end(), wrapped_payload + 8, 0);
  SyndromeTrace::rewrite_payload(blob);

  const std::string path = temp_path("wrap.qtrc");
  write_all(path, std::vector<char>(blob.begin(), blob.end()));
  EXPECT_THROW(SyndromeTrace::load(path), TraceError);
  std::remove(path.c_str());
}

TEST(StreamTrace, SingleBitCorruptionSweepNeverCrashesOrSilentlyLoads) {
  // Deterministic first slice of the ROADMAP fuzzing item: flip every
  // single bit of a small serialized trace. Each mutation must either
  // load and re-serialize to exactly the mutated bytes (bits the format
  // deliberately does not validate — the seed/p_data/p_meas provenance
  // fields) or throw TraceError — never crash, never load as something
  // the file does not say.
  StreamConfig config;
  config.lanes = 2;
  config.distance = 3;
  config.p = 0.05;
  config.rounds = 3;
  config.seed = 5;
  const auto trace = record_trace(config);
  const std::string path = temp_path("bitflip.qtrc");
  const std::string mutated_path = temp_path("bitflip_mut.qtrc");
  trace.save(path);
  const auto bytes = read_all(path);
  ASSERT_GT(bytes.size(), 0u);

  std::size_t loaded_ok = 0, rejected = 0;
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto mutated = bytes;
    mutated[bit / 8] =
        static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    write_all(mutated_path, mutated);
    try {
      const auto reloaded = SyndromeTrace::load(mutated_path);
      ++loaded_ok;
      reloaded.save(mutated_path);
      ASSERT_EQ(read_all(mutated_path), mutated)
          << "flipping bit " << bit << " was silently altered on load/save";
    } catch (const TraceError&) {
      ++rejected;
    }
  }
  // Exactly the 24 provenance bytes (seed u64, p_data f64, p_meas f64) are
  // informational; every other bit — magic, version, dimensions, payload,
  // padding, checksum — must be caught.
  EXPECT_EQ(loaded_ok, 24u * 8u);
  EXPECT_EQ(rejected, bytes.size() * 8 - 24 * 8);
  std::remove(path.c_str());
  std::remove(mutated_path.c_str());
}

TEST(StreamTrace, RewritePayloadMakesMutatedBytesLoadable) {
  // The fuzz-mutation contract: flip any payload bit, re-sign with
  // rewrite_payload, and the loader accepts the mutated file. Defect bits
  // round-trip to exactly the mutated bytes; padding bits (past `checks`
  // or `data_qubits` in a final partial byte) load but canonicalize back
  // to zero on re-save, because PackedBits::from_bytes masks the tail.
  StreamConfig config;
  config.lanes = 2;
  config.distance = 3;
  config.p = 0.05;
  config.rounds = 3;
  config.seed = 5;
  const auto trace = record_trace(config);
  const std::string path = temp_path("rewrite.qtrc");
  const std::string mutated_path = temp_path("rewrite_mut.qtrc");
  trace.save(path);
  const auto chars = read_all(path);
  const std::vector<std::uint8_t> bytes(chars.begin(), chars.end());

  const std::size_t offset = SyndromeTrace::payload_offset();
  const std::size_t payload_size = SyndromeTrace::payload_size(bytes);
  ASSERT_EQ(offset + payload_size + 8, bytes.size());

  std::size_t exact = 0, canonicalized = 0;
  for (std::size_t bit = 0; bit < payload_size * 8; ++bit) {
    auto mutated = bytes;
    mutated[offset + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    SyndromeTrace::rewrite_payload(mutated);
    write_all(mutated_path,
              std::vector<char>(mutated.begin(), mutated.end()));
    SyndromeTrace reloaded;
    ASSERT_NO_THROW(reloaded = SyndromeTrace::load(mutated_path))
        << "payload bit " << bit << " re-signed but rejected";
    reloaded.save(mutated_path);
    const auto resaved_chars = read_all(mutated_path);
    const std::vector<std::uint8_t> resaved(resaved_chars.begin(),
                                            resaved_chars.end());
    if (resaved == mutated) {
      ++exact;
    } else {
      // Padding bit: dropping it must restore the original bytes.
      const std::vector<std::uint8_t> original(chars.begin(), chars.end());
      ASSERT_EQ(resaved, original)
          << "payload bit " << bit
          << " neither round-tripped nor canonicalized";
      ++canonicalized;
    }
  }
  // d=3: 6 checks per 1-byte layer (2 padding bits), 13 data qubits per
  // 2-byte final error (3 padding bits). 2 lanes x 4 rounds of layers plus
  // 2 final errors.
  const std::size_t padding_bits = 2u * 4u * 2u + 2u * 3u;
  EXPECT_EQ(canonicalized, padding_bits);
  EXPECT_EQ(exact, payload_size * 8 - padding_bits);
  std::remove(path.c_str());
  std::remove(mutated_path.c_str());
}

TEST(StreamTrace, RewritePayloadRejectsForeignBlobs) {
  std::vector<std::uint8_t> blob(10, 0);
  EXPECT_THROW(SyndromeTrace::rewrite_payload(blob), TraceError);
  blob.assign(200, 0);  // long enough, but no QTRC magic
  EXPECT_THROW(SyndromeTrace::rewrite_payload(blob), TraceError);
  EXPECT_THROW(SyndromeTrace::payload_size(blob), TraceError);
}

TEST(StreamTrace, MissingFileThrows) {
  EXPECT_THROW(SyndromeTrace::load(temp_path("does_not_exist.qtrc")),
               TraceError);
}

}  // namespace
}  // namespace qec
