// Tests for the unified sweep driver: grid enumeration, curve/threshold
// extraction, CSV output, on-line variants, and thread-count invariance.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/sweep.hpp"

namespace qec {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.variants.push_back(decoder_variant("qecool", "qecool"));
  grid.variants.push_back(decoder_variant("mwpm", "mwpm"));
  grid.distances = {3, 5};
  grid.ps = {0.01, 0.03};
  grid.trials = 50;
  grid.seed = 7;
  grid.shards = 4;
  return grid;
}

TEST(Sweep, EnumeratesEveryCellVariantMajor) {
  const auto result = run_sweep(small_grid());
  ASSERT_EQ(result.cells.size(), 8u);
  EXPECT_EQ(result.cells[0].variant, "qecool");
  EXPECT_EQ(result.cells[0].distance, 3);
  EXPECT_DOUBLE_EQ(result.cells[0].p, 0.01);
  EXPECT_EQ(result.cells[3].variant, "qecool");
  EXPECT_EQ(result.cells[3].distance, 5);
  EXPECT_DOUBLE_EQ(result.cells[3].p, 0.03);
  EXPECT_EQ(result.cells[4].variant, "mwpm");
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.result.trials, 50u);
  }
}

TEST(Sweep, FindAndCurves) {
  const auto result = run_sweep(small_grid());
  const auto* cell = result.find("mwpm", 5, 0.03);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->decoder, "mwpm");
  EXPECT_EQ(result.find("mwpm", 5, 0.05), nullptr);
  EXPECT_EQ(result.find("uf", 5, 0.03), nullptr);

  const auto curves = result.curves("qecool");
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(curves[0].distance, 3);
  EXPECT_EQ(curves[1].distance, 5);
  ASSERT_EQ(curves[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(curves[0].points[0].p, 0.01);
}

TEST(Sweep, RoundsFollowTheMode) {
  SweepGrid grid = small_grid();
  const auto three_d = run_sweep(grid);
  EXPECT_EQ(three_d.find("qecool", 5, 0.01)->config.rounds, 5);
  grid.code_capacity = true;
  const auto two_d = run_sweep(grid);
  EXPECT_EQ(two_d.find("qecool", 5, 0.01)->config.rounds, 1);
  EXPECT_DOUBLE_EQ(two_d.find("qecool", 5, 0.01)->config.p_meas, 0.0);
}

TEST(Sweep, PerVariantTrialOverride) {
  SweepGrid grid = small_grid();
  grid.variants[1].trials_for = [](const ExperimentConfig& config) {
    return config.distance == 5 ? 10 : 20;
  };
  const auto result = run_sweep(grid);
  EXPECT_EQ(result.find("qecool", 5, 0.01)->result.trials, 50u);
  EXPECT_EQ(result.find("mwpm", 3, 0.01)->result.trials, 20u);
  EXPECT_EQ(result.find("mwpm", 5, 0.01)->result.trials, 10u);
}

TEST(Sweep, UnknownDecoderFailsBeforeSimulating) {
  SweepGrid grid = small_grid();
  grid.variants.push_back(decoder_variant("bad", "bogus"));
  int cells_run = 0;
  EXPECT_THROW(
      run_sweep(grid, "", [&](const SweepCell&) { ++cells_run; }),
      std::invalid_argument);
  EXPECT_EQ(cells_run, 0);
}

TEST(Sweep, ThreadCountNeverChangesResults) {
  SweepGrid grid = small_grid();
  grid.threads = 1;
  const auto sequential = run_sweep(grid);
  grid.threads = 4;
  const auto parallel = run_sweep(grid);
  ASSERT_EQ(sequential.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < sequential.cells.size(); ++i) {
    EXPECT_EQ(sequential.cells[i].result.failures,
              parallel.cells[i].result.failures);
    EXPECT_EQ(sequential.cells[i].result.matches.total(),
              parallel.cells[i].result.matches.total());
  }
}

TEST(Sweep, OnlineVariantReportsOperationalStats) {
  SweepGrid grid;
  OnlineConfig online;
  online.cycles_per_round = 40;  // starved clock: overflows at d=11
  grid.variants.push_back(online_variant("starved", online));
  grid.distances = {11};
  grid.ps = {0.01};
  grid.trials = 40;
  grid.shards = 4;
  const auto result = run_sweep(grid);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].decoder, "online");
  EXPECT_GT(result.cells[0].result.operational_failures, 0u);
  EXPECT_GT(result.cells[0].overflow_rate(), 0.0);
}

TEST(Sweep, ProgressCallbackSeesEveryCell) {
  int cells_seen = 0;
  run_sweep(small_grid(), "", [&](const SweepCell&) { ++cells_seen; });
  EXPECT_EQ(cells_seen, 8);
}

TEST(Sweep, WritesCsv) {
  const std::string path = ::testing::TempDir() + "sweep_test.csv";
  const auto result = run_sweep(small_grid(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + static_cast<int>(result.cells.size()));
  std::remove(path.c_str());
}

TEST(Sweep, LogSpacedGrid) {
  const auto ps = log_spaced(0.001, 0.1, 3);
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps.front(), 0.001);
  EXPECT_NEAR(ps[1], 0.01, 1e-12);
  EXPECT_NEAR(ps.back(), 0.1, 1e-12);
  EXPECT_EQ(log_spaced(0.5, 1.0, 1).size(), 1u);
}

}  // namespace
}  // namespace qec
