// Edge-case tests for the threshold estimator and matching-graph helpers.
#include <cmath>
#include <gtest/gtest.h>

#include "mwpm/matching_graph.hpp"
#include "sim/threshold.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(ThresholdEdge, EmptyCurves) {
  EXPECT_FALSE(estimate_threshold({}).has_value());
  EXPECT_FALSE(estimate_threshold({DistanceCurve{5, {}}}).has_value());
}

TEST(ThresholdEdge, SinglePointCurvesCannotCross) {
  DistanceCurve a{5, {{0.01, 0.1}}};
  DistanceCurve b{7, {{0.01, 0.2}}};
  EXPECT_FALSE(curve_crossing(a, b).has_value());
}

TEST(ThresholdEdge, DisjointRanges) {
  DistanceCurve a{5, {{0.001, 0.01}, {0.002, 0.02}}};
  DistanceCurve b{7, {{0.01, 0.01}, {0.02, 0.02}}};
  EXPECT_FALSE(curve_crossing(a, b).has_value());
}

TEST(ThresholdEdge, TouchingCurvesCountAsCrossing) {
  // Curves meeting exactly at a sample point.
  DistanceCurve a{5, {{0.01, 0.10}, {0.02, 0.20}, {0.04, 0.40}}};
  DistanceCurve b{7, {{0.01, 0.05}, {0.02, 0.20}, {0.04, 0.80}}};
  const auto th = curve_crossing(a, b);
  ASSERT_TRUE(th.has_value());
  EXPECT_NEAR(*th, 0.02, 0.002);
}

TEST(ThresholdEdge, AveragesMultipleCrossings) {
  // Three curves with pairwise crossings at the same point.
  std::vector<DistanceCurve> curves;
  for (int d : {5, 7, 9}) {
    DistanceCurve c{d, {}};
    for (double p : {0.005, 0.01, 0.02, 0.04}) {
      c.points.push_back({p, std::pow(p / 0.015, d) * 0.2});
    }
    curves.push_back(c);
  }
  const auto th = estimate_threshold(curves);
  ASSERT_TRUE(th.has_value());
  EXPECT_NEAR(*th, 0.015, 0.0015);
}

TEST(MatchingGraph, DefectDistanceIsAMetric) {
  const Defect a{1, 2, 3}, b{4, 0, 1}, c{2, 2, 2};
  EXPECT_EQ(defect_distance(a, a), 0);
  EXPECT_EQ(defect_distance(a, b), defect_distance(b, a));
  EXPECT_LE(defect_distance(a, b),
            defect_distance(a, c) + defect_distance(c, b));
  EXPECT_EQ(defect_distance(a, b), 3 + 2 + 2);
}

TEST(MatchingGraph, CollectDefectsFindsAllSetBits) {
  const PlanarLattice lat(5);
  std::vector<BitVec> layers(3,
                             BitVec(static_cast<std::size_t>(lat.num_checks()), 0));
  layers[0][static_cast<std::size_t>(lat.check_index(1, 1))] = 1;
  layers[2][static_cast<std::size_t>(lat.check_index(4, 3))] = 1;
  const auto defects = collect_defects(lat, layers);
  ASSERT_EQ(defects.size(), 2u);
  EXPECT_EQ(defects[0], (Defect{1, 1, 0}));
  EXPECT_EQ(defects[1], (Defect{4, 3, 2}));
}

TEST(MatchingGraph, PairsToCorrectionXorsOverlaps) {
  const PlanarLattice lat(5);
  // Two identical pairs cancel: XOR semantics.
  const std::vector<MatchedPair> pairs = {
      {{1, 1, 0}, {1, 2, 0}, false},
      {{1, 1, 0}, {1, 2, 0}, false},
  };
  EXPECT_TRUE(is_zero(pairs_to_correction(lat, pairs)));
}

TEST(MatchingGraph, TimeLikePairNeedsNoDataCorrection) {
  const PlanarLattice lat(5);
  const std::vector<MatchedPair> pairs = {{{2, 2, 0}, {2, 2, 3}, false}};
  EXPECT_TRUE(is_zero(pairs_to_correction(lat, pairs)));
}

}  // namespace
}  // namespace qec
