// Tests for the Union-Find decoder and its cluster bookkeeping.
#include "unionfind/uf_decoder.hpp"

#include <gtest/gtest.h>

#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"
#include "unionfind/union_find.hpp"

namespace qec {
namespace {

TEST(ClusterSets, BasicUnionAndParity) {
  ClusterSets cs(6);
  EXPECT_FALSE(cs.odd(0));
  cs.toggle_parity(0);
  EXPECT_TRUE(cs.odd(0));
  cs.toggle_parity(1);
  cs.unite(0, 1);
  EXPECT_FALSE(cs.odd(0));  // two defects merged: even
  EXPECT_EQ(cs.find(0), cs.find(1));
  EXPECT_EQ(cs.size(0), 2);
}

TEST(ClusterSets, BoundaryPropagatesThroughUnions) {
  ClusterSets cs(4);
  cs.mark_boundary(3);
  cs.toggle_parity(0);
  EXPECT_TRUE(cs.active(0));
  cs.unite(0, 3);
  EXPECT_FALSE(cs.active(0));  // boundary contact deactivates
  EXPECT_TRUE(cs.touches_boundary(0));
}

TEST(ClusterSets, UniteIsIdempotent) {
  ClusterSets cs(3);
  cs.toggle_parity(0);
  cs.unite(0, 1);
  const int root = cs.find(0);
  EXPECT_EQ(cs.unite(1, 0), root);
  EXPECT_EQ(cs.size(0), 2);
  EXPECT_TRUE(cs.odd(1));
}

SyndromeHistory history_from_error(const PlanarLattice& lat,
                                   const BitVec& error) {
  SyndromeHistory h;
  h.final_error = error;
  h.measured = {lat.syndrome(error), lat.syndrome(error)};
  h.difference = difference_syndromes(h.measured);
  return h;
}

TEST(UnionFindDecoder, CorrectsEverySingleDataError) {
  const PlanarLattice lat(5);
  UnionFindDecoder dec;
  for (int q = 0; q < lat.num_data(); ++q) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    err[static_cast<std::size_t>(q)] = 1;
    const auto h = history_from_error(lat, err);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "qubit " << q;
    EXPECT_FALSE(logical_failure(lat, h, r)) << "qubit " << q;
  }
}

TEST(UnionFindDecoder, MeasurementErrorOnlyNeedsNoDataCorrection) {
  const PlanarLattice lat(5);
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  BitVec flipped = clean;
  flipped[5] = 1;
  h.measured = {clean, flipped, clean, clean};
  h.difference = difference_syndromes(h.measured);
  UnionFindDecoder dec;
  const auto r = dec.decode(lat, h);
  EXPECT_TRUE(is_zero(r.correction));
}

TEST(UnionFindDecoder, EmptyHistory) {
  const PlanarLattice lat(7);
  const BitVec none(static_cast<std::size_t>(lat.num_data()), 0);
  UnionFindDecoder dec;
  const auto r = dec.decode(lat, history_from_error(lat, none));
  EXPECT_TRUE(is_zero(r.correction));
}

class UfRandomHistories : public ::testing::TestWithParam<int> {};

TEST_P(UfRandomHistories, ResidualAlwaysSyndromeFree) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(13u * static_cast<unsigned>(d));
  UnionFindDecoder dec;
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = sample_history(lat, {0.04, 0.04, d}, rng);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "trial " << trial;
  }
}

TEST_P(UfRandomHistories, AccuracyWithinRangeOfMwpm) {
  // UF is a strict approximation of MWPM: on aggregate it must not fail
  // dramatically more often. This is a smoke bound, not a tight one.
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(29u * static_cast<unsigned>(d));
  UnionFindDecoder uf;
  MwpmDecoder mwpm;
  int uf_fail = 0, mwpm_fail = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, d}, rng);
    uf_fail += logical_failure(lat, h, uf.decode(lat, h));
    mwpm_fail += logical_failure(lat, h, mwpm.decode(lat, h));
  }
  EXPECT_LE(mwpm_fail, uf_fail + 5);
  EXPECT_LE(uf_fail, trials / 3);
}

INSTANTIATE_TEST_SUITE_P(Distances, UfRandomHistories,
                         ::testing::Values(3, 5, 7),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qec
