// Tests for the sliding-window MWPM decoder.
#include "mwpm/windowed_mwpm.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(WindowedMwpm, RejectsBadConfig) {
  EXPECT_THROW(WindowedMwpmDecoder({0, 0}), std::invalid_argument);
  EXPECT_THROW(WindowedMwpmDecoder({4, 4}), std::invalid_argument);
  EXPECT_THROW(WindowedMwpmDecoder({4, -1}), std::invalid_argument);
}

TEST(WindowedMwpm, HugeWindowEqualsBatchMwpm) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(11);
  WindowedMwpmDecoder windowed({1000, 0});
  MwpmDecoder batch;
  for (int trial = 0; trial < 30; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 5}, rng);
    const auto rw = windowed.decode(lat, h);
    const auto rb = batch.decode(lat, h);
    // One final flush over all defects = exactly one batch MWPM.
    EXPECT_EQ(rw.correction, rb.correction) << "trial " << trial;
    EXPECT_LE(windowed.last_window_count(), 1);
  }
}

TEST(WindowedMwpm, ResidualAlwaysSyndromeFree) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(13);
  WindowedMwpmDecoder dec({6, 3});
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 7}, rng);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "trial " << trial;
  }
}

TEST(WindowedMwpm, WindowCountScalesWithHistory) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(17);
  WindowedMwpmDecoder dec({4, 2});
  const auto h = sample_history(lat, {0.05, 0.05, 10}, rng);
  dec.decode(lat, h);
  EXPECT_GT(dec.last_window_count(), 2);
}

TEST(WindowedMwpm, AccuracyDegradesGracefullyWithSmallWindows) {
  // A small window with a small guard commits premature matches; the
  // failure rate may rise but must stay within a sane factor of batch.
  const PlanarLattice lat(5);
  Xoshiro256ss rng(19);
  WindowedMwpmDecoder tight({4, 1});
  MwpmDecoder batch;
  int f_tight = 0, f_batch = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 5}, rng);
    f_tight += logical_failure(lat, h, tight.decode(lat, h));
    f_batch += logical_failure(lat, h, batch.decode(lat, h));
  }
  EXPECT_GE(f_tight + 5, f_batch);
  EXPECT_LE(f_tight, trials / 4) << "windowed decoding must still decode";
}

TEST(WindowedMwpm, SingleErrorCommitsExactCorrection) {
  const PlanarLattice lat(5);
  const int q = lat.horizontal_qubit(2, 2);
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  h.final_error[static_cast<std::size_t>(q)] = 1;
  const BitVec synd = lat.syndrome(h.final_error);
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  h.measured = {clean, synd, synd, synd, synd, synd, synd, synd};
  h.difference = difference_syndromes(h.measured);
  WindowedMwpmDecoder dec({4, 2});
  const auto r = dec.decode(lat, h);
  EXPECT_EQ(r.correction, h.final_error);
  // The match is old enough to commit before the final flush.
  EXPECT_GT(dec.last_window_count(), 1);
}

}  // namespace
}  // namespace qec
