#!/usr/bin/env python3
"""Validator for bench --json run records (stdlib only).

The bench binaries (lane_scaling, pool_scaling) emit machine-readable run
records via --json=FILE, and the repo pins perf trajectories as such
records (BENCH_lane_scaling.json). This checker fails the build when a
record is not valid JSON or is missing the keys those consumers rely on,
so the format cannot rot silently between the emitters and the pinned
files.

Usage: tools/check_bench_json.py record.json [record2.json ...]

A pinned trajectory file (an object with "before"/"after" run records plus
a "speedup" summary) is accepted as well: each embedded record is checked
with the same rules.
"""
import json
import sys

# Every run record must carry these top-level keys, and every cell these
# per-cell keys. Extra keys are always fine — the format may grow.
RECORD_KEYS = ("bench", "git_rev", "config", "cells")
CELL_KEYS = (
    "lanes",
    "mhz",
    "engines",
    "replay_ms",
    "streamed_lane_rounds",
    "us_per_lane_round",
    "lane_rounds_per_sec",
    "failed_lanes",
)
# Per-cell decode-cache block (lane_scaling --cache runs; DESIGN.md s13).
# Older records predate the cache datapath and carry no such block, so it
# is only required when the caller asks for it (after_cache / cache_sweep
# records in the pinned trajectory).
CACHE_KEYS = (
    "spec",
    "hits",
    "misses",
    "hit_rate",
    "installs",
    "evictions",
    "zero_rounds",
    "zero_pushes",
    "bypasses",
)


def check_cache_block(cache, label):
    errors = []
    if not isinstance(cache, dict):
        return [f"{label} is not an object"]
    for key in CACHE_KEYS:
        if key not in cache:
            errors.append(f"{label} missing key '{key}'")
    if "spec" in cache and not isinstance(cache["spec"], str):
        errors.append(f"{label}.spec is not a string")
    for key in CACHE_KEYS[1:]:
        value = cache.get(key)
        if value is not None and not isinstance(value, (int, float)):
            errors.append(f"{label}.{key} is not a number")
    return errors


def check_record(record, label, require_cache=False):
    errors = []
    for key in RECORD_KEYS:
        if key not in record:
            errors.append(f"{label}: missing key '{key}'")
    config = record.get("config")
    if not isinstance(config, dict):
        errors.append(f"{label}: 'config' is not an object")
        config = {}
    # "p" was a scalar before the --p sweep existed; both shapes stay valid.
    p = config.get("p")
    if p is not None and not isinstance(p, (int, float)):
        if not (isinstance(p, list) and p and
                all(isinstance(v, (int, float)) for v in p)):
            errors.append(f"{label}: config.p is neither a number nor a "
                          f"non-empty number array")
    if "cache" in config and not isinstance(config["cache"], str):
        errors.append(f"{label}: config.cache is not a string")
    cells = record.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append(f"{label}: 'cells' is not a non-empty array")
        return errors
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            errors.append(f"{label}: cells[{i}] is not an object")
            continue
        for key in CELL_KEYS:
            if key not in cell:
                errors.append(f"{label}: cells[{i}] missing key '{key}'")
        for key in ("replay_ms", "lane_rounds_per_sec"):
            value = cell.get(key)
            if value is not None and not isinstance(value, (int, float)):
                errors.append(f"{label}: cells[{i}].{key} is not a number")
        if "cache" in cell:
            errors.extend(
                check_cache_block(cell["cache"], f"{label}: cells[{i}].cache"))
        elif require_cache:
            errors.append(f"{label}: cells[{i}] missing key 'cache' "
                          f"(required for cache-datapath records)")
    return errors


def check_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: {err}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    if "cells" in doc:
        return check_record(doc, path)
    # Pinned trajectory: embedded run records plus a speedup summary.
    errors = []
    records = [k for k in doc if isinstance(doc[k], dict) and "cells" in doc[k]]
    if not records:
        return [f"{path}: neither a run record nor a pinned trajectory "
                f"(no embedded object with 'cells')"]
    for key in records:
        # Records born after the decode cache landed must carry the
        # per-cell cache block; older pinned records stay exempt.
        cache_era = key == "after_cache" or key.startswith("cache_sweep")
        errors.extend(
            check_record(doc[key], f"{path}:{key}", require_cache=cache_era))
    if "after_cache" in doc and "cache_speedup" not in doc:
        errors.append(f"{path}: has 'after_cache' but no 'cache_speedup' "
                      f"summary")
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py record.json [...]", file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        errors.extend(check_file(path))
    for error in errors:
        print(f"check_bench_json: {error}", file=sys.stderr)
    if not errors:
        print(f"check_bench_json: {len(argv) - 1} file(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
