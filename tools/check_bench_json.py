#!/usr/bin/env python3
"""Validator for bench --json run records (stdlib only).

The bench binaries (lane_scaling, pool_scaling) emit machine-readable run
records via --json=FILE, and the repo pins perf trajectories as such
records (BENCH_lane_scaling.json). This checker fails the build when a
record is not valid JSON or is missing the keys those consumers rely on,
so the format cannot rot silently between the emitters and the pinned
files.

Usage: tools/check_bench_json.py record.json [record2.json ...]

A pinned trajectory file (an object with "before"/"after" run records plus
a "speedup" summary) is accepted as well: each embedded record is checked
with the same rules.
"""
import json
import sys

# Every run record must carry these top-level keys, and every cell these
# per-cell keys. Extra keys are always fine — the format may grow.
RECORD_KEYS = ("bench", "git_rev", "config", "cells")
CELL_KEYS = (
    "lanes",
    "mhz",
    "engines",
    "replay_ms",
    "streamed_lane_rounds",
    "us_per_lane_round",
    "lane_rounds_per_sec",
    "failed_lanes",
)


def check_record(record, label):
    errors = []
    for key in RECORD_KEYS:
        if key not in record:
            errors.append(f"{label}: missing key '{key}'")
    if not isinstance(record.get("config"), dict):
        errors.append(f"{label}: 'config' is not an object")
    cells = record.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append(f"{label}: 'cells' is not a non-empty array")
        return errors
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            errors.append(f"{label}: cells[{i}] is not an object")
            continue
        for key in CELL_KEYS:
            if key not in cell:
                errors.append(f"{label}: cells[{i}] missing key '{key}'")
        for key in ("replay_ms", "lane_rounds_per_sec"):
            value = cell.get(key)
            if value is not None and not isinstance(value, (int, float)):
                errors.append(f"{label}: cells[{i}].{key} is not a number")
    return errors


def check_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: {err}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    if "cells" in doc:
        return check_record(doc, path)
    # Pinned trajectory: embedded run records plus a speedup summary.
    errors = []
    records = [k for k in doc if isinstance(doc[k], dict) and "cells" in doc[k]]
    if not records:
        return [f"{path}: neither a run record nor a pinned trajectory "
                f"(no embedded object with 'cells')"]
    for key in records:
        errors.extend(check_record(doc[key], f"{path}:{key}"))
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py record.json [...]", file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        errors.extend(check_file(path))
    for error in errors:
        print(f"check_bench_json: {error}", file=sys.stderr)
    if not errors:
        print(f"check_bench_json: {len(argv) - 1} file(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
