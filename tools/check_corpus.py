#!/usr/bin/env python3
"""Validator for the checked-in fuzz reproducer corpus (stdlib only).

tests/corpus/*.qtrc are QTRC v1 traces: seeds recorded by `engine_fuzz
--save-corpus` plus minimized reproducers of any divergence the fuzzer
ever found. corpus_replay_test replays them through the differential
oracles on every CI run, so a rotted file would fail late and noisily;
this checker fails fast instead, and — unlike the C++ loader — runs
without a build, so the docs/trace_format.md layout is independently
cross-checked from a second implementation.

Usage: tools/check_corpus.py [corpus_dir]   (default: tests/corpus)

Checks per file: magic/version, plausible distance, check/data counts
consistent with the distance (planar lattice: d*(d-1) checks, d^2+(d-1)^2
data qubits), nonzero lanes/rounds, exact payload length, and the FNV-1a
64 footer checksum over the payload.
"""
import struct
import sys
from pathlib import Path

MAGIC = 0x43525451  # "QTRC", LSB first
VERSION = 1
HEADER = struct.Struct("<7I Q d d")  # magic..data_qubits, seed, p_data, p_meas


def fnv1a64(data):
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def check_file(path):
    blob = path.read_bytes()
    if len(blob) < HEADER.size + 8:
        return f"{path.name}: truncated ({len(blob)} bytes)"
    (magic, version, distance, lanes, rounds, checks, data_qubits,
     _seed, p_data, p_meas) = HEADER.unpack_from(blob)
    if magic != MAGIC:
        return f"{path.name}: bad magic 0x{magic:08x}"
    if version != VERSION:
        return f"{path.name}: unsupported version {version}"
    if not 2 <= distance <= 1000:
        return f"{path.name}: implausible distance {distance}"
    if checks != distance * (distance - 1):
        return f"{path.name}: checks {checks} != d*(d-1)"
    if data_qubits != distance * distance + (distance - 1) * (distance - 1):
        return f"{path.name}: data_qubits {data_qubits} != d^2+(d-1)^2"
    if lanes == 0 or rounds == 0:
        return f"{path.name}: empty lane or round count"
    if not (0.0 <= p_data <= 1.0 and 0.0 <= p_meas <= 1.0):
        return f"{path.name}: provenance p outside [0, 1]"
    layer_bytes = (checks + 7) // 8
    error_bytes = (data_qubits + 7) // 8
    payload = rounds * lanes * layer_bytes + lanes * error_bytes
    expected = HEADER.size + payload + 8
    if len(blob) != expected:
        return f"{path.name}: {len(blob)} bytes, layout says {expected}"
    stored = struct.unpack_from("<Q", blob, HEADER.size + payload)[0]
    actual = fnv1a64(blob[HEADER.size:HEADER.size + payload])
    if stored != actual:
        return f"{path.name}: checksum 0x{stored:016x} != 0x{actual:016x}"
    return None


def main():
    corpus = Path(sys.argv[1] if len(sys.argv) > 1 else "tests/corpus")
    files = sorted(corpus.glob("*.qtrc"))
    if not files:
        print(f"check_corpus: no *.qtrc under {corpus}", file=sys.stderr)
        return 1
    errors = [e for e in (check_file(f) for f in files) if e]
    for error in errors:
        print(f"check_corpus: {error}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_corpus: {len(files)} corpus file(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
