#!/usr/bin/env python3
"""Markdown link checker: dead relative links fail the build.

Scans the given markdown files (or the repo's default doc set) for inline
links and images `[text](target)`, resolves every relative target against
the file's directory, and exits non-zero listing any target that does not
exist. External links (http/https/mailto) and pure in-page anchors are
skipped; `target#anchor` is checked for file existence only.

Usage: tools/check_links.py [file.md ...]
"""
import os
import re
import sys

# Inline links/images. [text](target "title") — capture the target up to
# the first whitespace or closing paren.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "PAPERS.md",
    "docs/streaming.md",
    "docs/trace_format.md",
    "docs/determinism.md",
]


def strip_code(text):
    """Drop fenced and inline code spans so sample snippets are not linted."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path):
    dead = []
    with open(path, encoding="utf-8") as handle:
        text = strip_code(handle.read())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path) or ".", target.split("#", 1)[0])
        )
        if not os.path.exists(resolved):
            dead.append((target, resolved))
    return dead


def main(argv):
    files = argv[1:] or [f for f in DEFAULT_FILES if os.path.exists(f)]
    missing_inputs = [f for f in argv[1:] if not os.path.exists(f)]
    if missing_inputs:
        for f in missing_inputs:
            print(f"check_links: no such file: {f}", file=sys.stderr)
        return 2

    failures = 0
    for path in files:
        for target, resolved in check_file(path):
            print(f"{path}: dead link '{target}' -> {resolved}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"check_links: {failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"check_links: {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
