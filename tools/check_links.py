#!/usr/bin/env python3
"""Markdown link checker: dead relative links and anchors fail the build.

Scans the given markdown files (or the repo's default doc set) for inline
links and images `[text](target)`, resolves every relative target against
the file's directory, and exits non-zero listing any target that does not
exist. External links (http/https/mailto) are skipped. Anchored targets —
`target#anchor` and pure in-page `#anchor` links — are additionally
checked against the GitHub-style heading slugs of the target file, so a
link to a renamed section fails the build just like a link to a renamed
file.

Usage: tools/check_links.py [file.md ...]
"""
import os
import re
import sys

# Inline links/images. [text](target "title") — capture the target up to
# the first whitespace or closing paren.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "PAPERS.md",
    "docs/streaming.md",
    "docs/trace_format.md",
    "docs/determinism.md",
    "docs/observability.md",
]


def strip_code(text):
    """Drop fenced and inline code spans so sample snippets are not linted."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    slug = heading.strip().lower()
    # Inline code/emphasis markers do not survive into the anchor
    # (underscores do — GitHub keeps them).
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path, cache={}):
    """All heading anchors of a markdown file (duplicate slugs get -N)."""
    if path not in cache:
        anchors = set()
        counts = {}
        try:
            with open(path, encoding="utf-8") as handle:
                text = re.sub(r"```.*?```", "", handle.read(), flags=re.DOTALL)
        except OSError:
            text = ""
        for match in HEADING_RE.finditer(text):
            slug = github_slug(match.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_file(path):
    dead = []
    with open(path, encoding="utf-8") as handle:
        text = strip_code(handle.read())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path) or ".", file_part)
            if file_part
            else path
        )
        if not os.path.exists(resolved):
            dead.append((target, f"no such file: {resolved}"))
            continue
        if anchor and resolved.endswith(".md"):
            if anchor.lower() not in anchors_of(resolved):
                dead.append((target, f"no heading '#{anchor}' in {resolved}"))
    return dead


def main(argv):
    files = argv[1:] or [f for f in DEFAULT_FILES if os.path.exists(f)]
    missing_inputs = [f for f in argv[1:] if not os.path.exists(f)]
    if missing_inputs:
        for f in missing_inputs:
            print(f"check_links: no such file: {f}", file=sys.stderr)
        return 2

    failures = 0
    for path in files:
        for target, reason in check_file(path):
            print(f"{path}: dead link '{target}' ({reason})", file=sys.stderr)
            failures += 1
    if failures:
        print(f"check_links: {failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"check_links: {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
