#!/usr/bin/env python3
"""Validator for --trace-json Chrome-trace-event timelines (stdlib only).

The streaming benches (stream_soak, pool_scaling, lane_scaling) export the
obs event trace as Chrome trace-event JSON (src/obs/chrome_trace.cpp) so
any run opens in Perfetto / chrome://tracing. This checker fails the build
when an export stops being loadable: bad JSON, a missing required key, an
unknown phase, a negative duration, or per-track timestamps that run
backwards (the merge order the tracer guarantees). CI runs it against a
stream_soak smoke in both build jobs.

Usage: tools/check_trace_json.py trace.json [trace2.json ...]

Checks per event: "ph"/"ts"/"pid"/"tid"/"name" present, "ph" in the known
set, "ts" numeric and >= 0, "dur" >= 0 on "X" events, instants carry
"s". Checks per (pid, tid) track: timestamps nondecreasing. "slo" events
(the SLO burn-rate state transitions) must carry an integer objective
index and a known state name. The wall-clock profiler process (detected
via its process_name metadata containing "wall") may hold only complete
"X" slices, each flagged args.wall_clock=true.

Unbalanced "B"/"E" pairs are warnings when the trace_ring_stats metadata
reports dropped events (a ring that overwrote its oldest events can
legitimately orphan an "E") — but hard errors when dropped == 0, because
then every emitted span must balance.
"""
import json
import sys

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")
KNOWN_PHASES = {"B", "E", "X", "i", "M", "C"}
SLO_STATES = {"ok", "warning", "page"}


def scan_metadata(events):
    """First pass: wall-clock pids and the ring's dropped-event count."""
    wall_pids = set()
    ring_dropped = None
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "M":
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        if (event.get("name") == "process_name"
                and "wall" in str(args.get("name", "")).lower()):
            wall_pids.add(event.get("pid"))
        if event.get("name") == "trace_ring_stats":
            ring_dropped = args.get("dropped")
    return wall_pids, ring_dropped


def check_events(events, label):
    errors = []
    warnings = []
    last_ts = {}
    open_spans = {}
    wall_pids, ring_dropped = scan_metadata(events)
    # A lossless ring (dropped == 0) cannot legitimately orphan a span.
    strict_spans = ring_dropped == 0
    for i, event in enumerate(events):
        where = f"{label}: traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            errors.append(f"{where} missing key(s) {missing}")
            continue
        ph = event["ph"]
        if ph not in KNOWN_PHASES:
            errors.append(f"{where} unknown phase '{ph}'")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            errors.append(f"{where} 'ts' is not a number")
            continue
        if ts < 0:
            errors.append(f"{where} 'ts' is negative ({ts})")
        if ph == "M":
            continue  # metadata carries no timeline semantics
        if event["pid"] in wall_pids and ph != "X":
            errors.append(
                f"{where} phase '{ph}' on the wall-clock profiler track "
                f"(pid={event['pid']}); only complete 'X' slices belong "
                "there")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                errors.append(f"{where} 'X' event without numeric 'dur'")
            elif dur < 0:
                errors.append(f"{where} negative 'dur' ({dur})")
            if event["pid"] in wall_pids:
                args = event.get("args")
                if not isinstance(args, dict) or args.get(
                        "wall_clock") is not True:
                    errors.append(
                        f"{where} wall-clock slice without "
                        "args.wall_clock=true")
        if ph == "i" and "s" not in event:
            errors.append(f"{where} instant without scope 's'")
        if event["name"] == "slo":
            args = event.get("args")
            if not isinstance(args, dict):
                errors.append(f"{where} 'slo' event without args")
            else:
                objective = args.get("objective")
                if not isinstance(objective, int) or isinstance(
                        objective, bool):
                    errors.append(
                        f"{where} 'slo' event without integer "
                        "args.objective")
                state = args.get("state")
                if state not in SLO_STATES:
                    errors.append(
                        f"{where} 'slo' event state {state!r} not in "
                        f"{sorted(SLO_STATES)}")
        track = (event["pid"], event["tid"])
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"{where} 'ts' {ts} runs backwards on track pid={track[0]} "
                f"tid={track[1]} (previous {last_ts[track]})")
        last_ts[track] = ts
        if ph == "B":
            open_spans[track] = open_spans.get(track, 0) + 1
        elif ph == "E":
            if open_spans.get(track, 0) > 0:
                open_spans[track] -= 1
            else:
                message = (
                    f"{where} 'E' with no open 'B' on track pid={track[0]} "
                    f"tid={track[1]}")
                if strict_spans:
                    errors.append(message + " (ring reports 0 drops)")
                else:
                    warnings.append(message + " (ring drop?)")
    for (pid, tid), depth in sorted(open_spans.items()):
        if depth > 0:
            message = (
                f"{label}: {depth} unclosed 'B' span(s) on track pid={pid} "
                f"tid={tid}")
            if strict_spans:
                errors.append(message + " (ring reports 0 drops)")
            else:
                warnings.append(message)
    return errors, warnings


def check_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: {err}"], []
    if isinstance(doc, list):
        events = doc  # the JSON-array flavour of the format
    elif isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return [f"{path}: 'traceEvents' is not an array"], []
    else:
        return [f"{path}: top level is neither object nor array"], []
    if not events:
        return [f"{path}: no trace events"], []
    return check_events(events, path)


def main(argv):
    if len(argv) < 2:
        print("usage: check_trace_json.py trace.json [...]", file=sys.stderr)
        return 2
    errors = []
    warnings = []
    for path in argv[1:]:
        file_errors, file_warnings = check_file(path)
        errors.extend(file_errors)
        warnings.extend(file_warnings)
    for warning in warnings:
        print(f"check_trace_json: warning: {warning}", file=sys.stderr)
    for error in errors:
        print(f"check_trace_json: {error}", file=sys.stderr)
    if not errors:
        print(f"check_trace_json: {len(argv) - 1} file(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
