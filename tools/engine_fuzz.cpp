// Coverage-guided engine fuzzer CLI (src/fuzz, docs/fuzzing.md). Three
// modes:
//
//   fuzz (default)    mutate defect patterns inside valid QTRC traces and
//                     run the differential-oracle battery; divergences are
//                     minimized and saved as .qtrc reproducers.
//   --replay=DIR      replay every corpus trace through the oracles and
//                     print one verdict line per entry (byte-identical at
//                     any --threads).
//   --minimize=FILE   shrink a failing trace file with the delta-debugging
//                     minimizer and write FILE.min.qtrc.
//   --save-corpus=DIR record the seed matrix as .qtrc files (the checked-in
//                     tests/corpus seeds come from this).
//
// CI runs: engine_fuzz --time-budget=30 --seed=1 (must find nothing) and
// engine_fuzz --iters=N --inject-fault=cache-replay --expect-failure (the
// harness self-check: a planted engine bug must be found).
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/oracle.hpp"
#include "qecool/config.hpp"
#include "stream/service.hpp"
#include "stream/trace.hpp"

namespace {

constexpr const char* kSummary =
    "coverage-guided differential fuzzer for the on-line QECOOL engine";

constexpr const char* kOptions =
    "  --time-budget=0      fuzz wall-clock budget in seconds (0: iters only)\n"
    "  --iters=0            fuzz iteration cap (0: time budget only)\n"
    "  --seed=1             fuzzer RNG seed (fixed seed => fixed sequence)\n"
    "  --d=5,9              seed-trace code distances\n"
    "  --p=1e-4,3e-3        seed-trace physical error rates\n"
    "  --lanes=2            lanes per seed trace\n"
    "  --rounds=12          noisy rounds per seed trace\n"
    "  --cycles=4           per-round cycle budget of the oracle arms\n"
    "                       (0: unconstrained)\n"
    "  --cache=clock        decode-cache arm: clock | off\n"
    "  --thv=3              engine vertical threshold (-1: eager decode —\n"
    "                       single-layer windows recur, so the cache hits)\n"
    "  --corpus=DIR         extra seed traces (*.qtrc) to start from\n"
    "  --out=DIR            write failing inputs + minimized reproducers here\n"
    "  --no-minimize        keep failing inputs unshrunk\n"
    "  --inject-fault=NAME  plant a test-only engine bug: cache-replay |\n"
    "                       cycle-report (harness self-check)\n"
    "  --expect-failure     exit 0 iff the fuzz run FOUND a failure\n"
    "  --replay=DIR         replay mode: run every *.qtrc in DIR\n"
    "  --threads=1          replay worker threads\n"
    "  --report=FILE        also write the replay report to FILE\n"
    "  --minimize=FILE      minimize mode: shrink one failing trace file\n"
    "  --save-corpus=DIR    record the seed matrix into DIR and exit\n";

std::vector<double> parse_doubles(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int parse_fault(const std::string& name) {
  if (name.empty() || name == "none") return qec::QecoolConfig::kFaultNone;
  if (name == "cache-replay") return qec::QecoolConfig::kFaultCacheReplay;
  if (name == "cycle-report") return qec::QecoolConfig::kFaultCycleReport;
  std::fprintf(stderr, "engine_fuzz: unknown --inject-fault=%s\n",
               name.c_str());
  std::exit(2);
}

std::vector<qec::fuzz::FuzzSeedSpec> build_seeds(const qec::CliArgs& args) {
  const auto distances = parse_doubles(args.get_or("d", "5,9"));
  const auto ps = parse_doubles(args.get_or("p", "1e-4,3e-3"));
  const int lanes = static_cast<int>(args.get_int_or("lanes", 2));
  const int rounds = static_cast<int>(args.get_int_or("rounds", 12));
  std::vector<qec::fuzz::FuzzSeedSpec> seeds;
  int i = 0;
  for (const double d : distances) {
    for (const double p : ps) {
      qec::fuzz::FuzzSeedSpec spec;
      spec.distance = static_cast<int>(d);
      spec.p = p;
      spec.lanes = lanes;
      spec.rounds = rounds;
      spec.seed = 2021 + static_cast<std::uint64_t>(i++);
      seeds.push_back(spec);
    }
  }
  return seeds;
}

qec::fuzz::OracleConfig build_oracle(const qec::CliArgs& args) {
  qec::fuzz::OracleConfig oracle;
  oracle.online.cycles_per_round = args.get_double_or("cycles", 4.0);
  oracle.online.engine.thv = static_cast<int>(args.get_int_or("thv", 3));
  const std::string cache = args.get_or("cache", "clock");
  if (cache == "off") {
    oracle.online.engine.cache.enabled = false;
  } else if (cache != "clock" && cache != "on") {
    std::fprintf(stderr, "engine_fuzz: unknown --cache=%s\n", cache.c_str());
    std::exit(2);
  }
  oracle.fault = parse_fault(args.get_or("inject-fault", ""));
  return oracle;
}

int run_replay(const qec::CliArgs& args, const std::string& dir) {
  const auto paths = qec::fuzz::list_corpus(dir);
  if (paths.empty()) {
    std::fprintf(stderr, "engine_fuzz: no *.qtrc under %s\n", dir.c_str());
    return 2;
  }
  const int threads = qec::threads_override(args, 1);
  const auto report =
      qec::fuzz::replay_corpus(paths, build_oracle(args), threads);
  const std::string text = report.to_text();
  std::fputs(text.c_str(), stdout);
  const std::string report_path = args.get_or("report", "");
  if (!report_path.empty()) {
    std::FILE* f = std::fopen(report_path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "engine_fuzz: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return report.ok() ? 0 : 1;
}

int run_minimize(const qec::CliArgs& args, const std::string& path) {
  const auto trace = qec::SyndromeTrace::load(path);
  const auto oracle = build_oracle(args);
  const auto failing = [&](const qec::SyndromeTrace& t) {
    return !qec::fuzz::run_oracles(t, oracle).ok();
  };
  if (!failing(trace)) {
    std::fprintf(stderr,
                 "engine_fuzz: %s passes all oracles; nothing to minimize\n",
                 path.c_str());
    return 1;
  }
  const auto result = qec::fuzz::minimize_trace(trace, failing);
  const std::string out = path + ".min.qtrc";
  result.trace.save(out);
  std::printf("%s: %d lanes x %d rounds -> %d lanes x %d rounds (%d runs)\n",
              out.c_str(), trace.lanes(), trace.rounds(), result.trace.lanes(),
              result.trace.rounds(), result.predicate_calls);
  return 0;
}

int run_save_corpus(const qec::CliArgs& args, const std::string& dir) {
  qec::fuzz::FuzzConfig config;
  config.seeds = build_seeds(args);
  // One oracle pass over each recorded seed (max_iterations=0 would throw;
  // a single iteration keeps the run cheap and validates every seed).
  config.oracle = build_oracle(args);
  config.max_iterations = 1;
  config.out_dir = dir;
  int written = 0;
  for (const auto& spec : config.seeds) {
    qec::StreamConfig stream;
    stream.lanes = spec.lanes;
    stream.distance = spec.distance;
    stream.p = spec.p;
    stream.rounds = spec.rounds;
    stream.seed = spec.seed;
    const auto trace = qec::record_trace(stream);
    const auto report = qec::fuzz::run_oracles(trace, config.oracle);
    if (!report.ok()) {
      std::fprintf(stderr, "engine_fuzz: seed d=%d p=%g diverges: %s\n",
                   spec.distance, spec.p,
                   qec::fuzz::summarize_report(report).c_str());
      return 1;
    }
    char name[64];
    std::snprintf(name, sizeof(name), "seed-d%d-p%g-l%d-r%d.qtrc",
                  spec.distance, spec.p, spec.lanes, spec.rounds);
    std::string out = dir;
    if (!out.empty() && out.back() != '/') out += '/';
    trace.save(out + name);
    std::printf("wrote %s%s\n", out.c_str(), name);
    ++written;
  }
  return written > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "engine_fuzz", kSummary, kOptions)) return 0;

  const std::string replay_dir = args.get_or("replay", "");
  if (!replay_dir.empty()) return run_replay(args, replay_dir);
  const std::string minimize_path = args.get_or("minimize", "");
  if (!minimize_path.empty()) return run_minimize(args, minimize_path);
  const std::string save_dir = args.get_or("save-corpus", "");
  if (!save_dir.empty()) return run_save_corpus(args, save_dir);

  qec::fuzz::FuzzConfig config;
  config.seeds = build_seeds(args);
  config.oracle = build_oracle(args);
  config.rng_seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  config.max_iterations = static_cast<int>(args.get_int_or("iters", 0));
  std::string budget = args.get_or("time-budget", "0");
  if (!budget.empty() && budget.back() == 's') budget.pop_back();
  config.time_budget_s = budget.empty() ? 0.0 : std::stod(budget);
  if (config.max_iterations <= 0 && config.time_budget_s <= 0.0) {
    config.time_budget_s = 30.0;  // the CI smoke default
  }
  config.corpus_dir = args.get_or("corpus", "");
  config.out_dir = args.get_or("out", "");
  config.minimize = !args.get_flag("no-minimize");

  const auto stats = qec::fuzz::run_fuzzer(config);
  std::printf(
      "fuzz: %d iterations in %.1fs, %llu oracle runs, corpus %d, "
      "%d coverage cells, cache %llu hits / %llu misses\n",
      stats.iterations, stats.elapsed_s,
      static_cast<unsigned long long>(stats.oracle_runs), stats.corpus_size,
      stats.coverage_cells, static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses));
  for (const auto& failure : stats.failures) {
    std::printf("FAILURE (iteration %d): %s\n", failure.iteration,
                failure.summary.c_str());
    std::printf("  input: %d lanes x %d rounds -> minimized %d lanes x %d "
                "rounds (%d predicate runs)\n",
                failure.trace.lanes(), failure.trace.rounds(),
                failure.minimized.lanes(), failure.minimized.rounds(),
                failure.predicate_calls);
    if (!failure.saved_path.empty()) {
      std::printf("  reproducer: %s\n", failure.saved_path.c_str());
    }
  }

  const bool expect_failure = args.get_flag("expect-failure");
  if (expect_failure) {
    if (stats.found_failure()) {
      std::printf("self-check ok: the planted fault was detected\n");
      return 0;
    }
    std::fprintf(stderr,
                 "self-check FAILED: no divergence found — the oracle "
                 "harness is blind\n");
    return 1;
  }
  return stats.found_failure() ? 1 : 0;
}
