#!/usr/bin/env python3
"""Triage renderer for postmortem flight-recorder bundles (stdlib only).

The streaming service's FlightRecorder (src/obs/postmortem.hpp) dumps an
obs bundle — manifest.json, config.json, trace.json, metrics.csv,
last_window.csv, profile.csv, slo.csv — when a run dies or is asked to
(--dump-obs-on-exit, SIGUSR1). This tool turns a bundle directory into
the first page of a postmortem: why the dump happened, what the run was,
the last metrics heartbeat, where the wall-clock went, and which SLO
objectives were burning.

Usage: tools/obs_report.py BUNDLE_DIR

Exits 0 when the bundle is readable and internally consistent (every
manifest-listed file present and parseable), 1 otherwise. CI dumps a
bundle in its stream_soak smoke and runs this over it.
"""
import csv
import json
import os
import sys


def fail(message):
    print(f"obs_report: {message}", file=sys.stderr)
    return 1


def read_csv(path):
    with open(path, encoding="utf-8", newline="") as handle:
        return list(csv.DictReader(handle))


def render_config(config):
    print("run configuration:")
    obs = config.pop("obs", {})
    keys = ", ".join(f"{k}={v}" for k, v in config.items())
    print(f"  {keys}")
    if obs:
        print("  obs: " + ", ".join(f"{k}={v}" for k, v in obs.items()))


def render_last_window(rows):
    if not rows:
        print("last metrics window: (empty)")
        return
    row = rows[-1]
    span = f"rounds {row.get('round_first')}..{row.get('round_last')}"
    partial = " (partial)" if row.get("partial") == "1" else ""
    print(f"last metrics window #{row.get('window')}, {span}{partial}:")
    skip = {"window", "round_first", "round_last", "rounds", "partial"}
    cells = [f"{k}={v}" for k, v in row.items() if k not in skip and v != "0"]
    for start in range(0, len(cells), 6):
        print("  " + ", ".join(cells[start:start + 6]))


def render_profile(rows):
    if not rows:
        print("wall-clock profile: (empty)")
        return
    print("wall-clock profile (non-deterministic by design):")
    total = sum(int(r["total_ns"]) for r in rows) or 1
    for row in sorted(rows, key=lambda r: -int(r["total_ns"])):
        ns = int(row["total_ns"])
        print(f"  {row['stage']:<16} {ns / 1e6:10.3f} ms"
              f"  ({100.0 * ns / total:5.1f}%  of labelled time,"
              f" {row['calls']} calls)")


def render_slo(manifest_slo, verdict_rows):
    if not manifest_slo:
        print("slo: (not configured)")
        return
    print(f"slo '{manifest_slo.get('spec')}' — worst state "
          f"{manifest_slo.get('worst_state')}, compliant: "
          f"{manifest_slo.get('compliant')}")
    for objective in manifest_slo.get("objectives", []):
        print(f"  {objective.get('spec'):<24} {objective.get('final_state'):<8}"
              f" {objective.get('violations')}/{objective.get('windows')}"
              f" bad windows, {objective.get('pages')} paged,"
              f" {objective.get('warnings')} warned")
    # The last few verdicts are the burn trajectory going into the dump.
    tail = verdict_rows[-6:]
    if tail:
        print("  last verdicts (window: value op threshold -> state):")
        for row in tail:
            print(f"    #{row['window']:>4}: {row['metric']}={row['value']} "
                  f"{row['op']} {row['threshold']} -> {row['state']}")


def render_trace(path, manifest):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    events = doc.get("traceEvents", [])
    phases = {}
    for event in events:
        phases[event.get("ph")] = phases.get(event.get("ph"), 0) + 1
    ring = manifest.get("trace", {})
    print(f"trace: {len(events)} exported events "
          f"({ring.get('emitted', '?')} emitted, "
          f"{ring.get('dropped', '?')} dropped by the rings); phases " +
          ", ".join(f"{k}:{v}" for k, v in sorted(phases.items())))


def main(argv):
    if len(argv) != 2:
        print("usage: obs_report.py BUNDLE_DIR", file=sys.stderr)
        return 2
    bundle = argv[1]
    manifest_path = os.path.join(bundle, "manifest.json")
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"cannot read {manifest_path}: {err}")

    print(f"==== obs bundle: {bundle} ====")
    print(f"dump reason: {manifest.get('reason', '(missing)')}")
    files = manifest.get("files", [])
    missing = [f for f in files if not os.path.exists(os.path.join(bundle, f))]
    if missing:
        return fail(f"manifest lists missing file(s): {missing}")
    print(f"files: {', '.join(files)}")
    print()

    try:
        if "config.json" in files:
            with open(os.path.join(bundle, "config.json"),
                      encoding="utf-8") as handle:
                render_config(json.load(handle))
        if "trace.json" in files:
            render_trace(os.path.join(bundle, "trace.json"), manifest)
        windows = manifest.get("metrics_windows")
        if windows is not None:
            print(f"metrics: {windows} closed window(s)")
        if "last_window.csv" in files:
            render_last_window(read_csv(os.path.join(bundle,
                                                     "last_window.csv")))
        if "profile.csv" in files:
            render_profile(read_csv(os.path.join(bundle, "profile.csv")))
        verdicts = (read_csv(os.path.join(bundle, "slo.csv"))
                    if "slo.csv" in files else [])
        render_slo(manifest.get("slo"), verdicts)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as err:
        return fail(f"bundle file unreadable: {err!r}")
    print()
    print("obs_report: bundle OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
